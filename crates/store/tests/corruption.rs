//! Corruption resilience: the loader's no-panic contract under hostile
//! bytes. The exhaustive sweep flips *every byte* of a small snapshot —
//! stronger than randomized mutation — and demands a structured error
//! each time; targeted cases pin the specific `StoreError` variant per
//! defect class.

use kdv_core::Kernel;
use kdv_data::emulate::Dataset;
use kdv_index::KdTree;
use kdv_sampling::zorder_sample;
use kdv_store::{Snapshot, SnapshotWriter, StoreError};

fn small_snapshot() -> Vec<u8> {
    let ps = Dataset::Crime.generate(120, 5);
    let tree = KdTree::build_default(&ps);
    SnapshotWriter::new(&tree, Kernel::gaussian(0.8)).to_bytes()
}

/// A snapshot exercising every optional section: certified pyramid
/// levels (CORE + PYRA) and an ingest watermark (INGS).
fn pyramid_snapshot() -> Vec<u8> {
    let ps = Dataset::Crime.generate(120, 5);
    let tree = KdTree::build_default(&ps);
    SnapshotWriter::new(&tree, Kernel::gaussian(0.8))
        .with_pyramid(vec![
            (zorder_sample(tree.points(), 10, 0.25), 0.9),
            (zorder_sample(tree.points(), 40, 0.25), 0.43),
        ])
        .with_applied_seq(7)
        .to_bytes()
}

fn assert_every_flip_fails(clean: &[u8], what: &str) {
    for i in 0..clean.len() {
        for flip in [0xFFu8, 0x01] {
            let mut bytes = clean.to_vec();
            bytes[i] ^= flip;
            // Every byte is covered by a checksum (or *is* a checksum),
            // so no flip may load cleanly — and none may panic. A panic
            // here aborts the test, which is the point.
            match Snapshot::from_bytes(&bytes) {
                Ok(_) => panic!("{what}: flip {flip:#x} at byte {i} loaded successfully"),
                Err(e) => {
                    let _ = e.to_string(); // Display must not panic either.
                }
            }
        }
    }
}

#[test]
fn every_single_byte_flip_is_a_structured_error() {
    let clean = small_snapshot();
    assert!(Snapshot::from_bytes(&clean).is_ok());
    assert_every_flip_fails(&clean, "plain snapshot");
}

#[test]
fn every_single_byte_flip_in_pyramid_sections_is_a_structured_error() {
    // Same sweep over a snapshot carrying CORE + PYRA + INGS, so the
    // optional sections' bytes (and their table entries) are covered
    // by the no-panic contract too.
    let clean = pyramid_snapshot();
    let snap = Snapshot::from_bytes(&clean).expect("pyramid snapshot loads");
    assert_eq!(snap.level_bounds, vec![0.9, 0.43]);
    assert_eq!(snap.applied_seq, 7);
    assert_every_flip_fails(&clean, "pyramid snapshot");
}

#[test]
fn every_truncation_is_a_structured_error() {
    let clean = small_snapshot();
    // All short prefixes at structure boundaries plus a byte-level
    // sweep of the first kilobyte.
    let mut cuts: Vec<usize> = (0..clean.len().min(1024)).collect();
    for frac in [1, 2, 3, 4, 7] {
        cuts.push(clean.len() * frac / 8);
    }
    cuts.push(clean.len() - 1);
    for cut in cuts {
        let e = match Snapshot::from_bytes(&clean[..cut]) {
            Ok(_) => panic!("truncation at {cut} must fail"),
            Err(e) => e,
        };
        assert!(
            matches!(
                e,
                StoreError::Truncated { .. } | StoreError::LengthMismatch { .. }
            ),
            "cut at {cut}: unexpected error {e}"
        );
    }
}

#[test]
fn wrong_magic() {
    let mut bytes = small_snapshot();
    bytes[0..4].copy_from_slice(b"PNGx");
    assert!(matches!(
        Snapshot::from_bytes(&bytes),
        Err(StoreError::BadMagic { found }) if &found == b"PNGx"
    ));
}

#[test]
fn future_version_reports_upgrade_not_corruption() {
    let mut bytes = small_snapshot();
    bytes[4..6].copy_from_slice(&9u16.to_le_bytes());
    assert!(matches!(
        Snapshot::from_bytes(&bytes),
        Err(StoreError::UnsupportedVersion {
            found: 9,
            supported: 1
        })
    ));
}

#[test]
fn unknown_flags_are_rejected() {
    let mut bytes = small_snapshot();
    bytes[6..8].copy_from_slice(&0x8000u16.to_le_bytes());
    assert!(matches!(
        Snapshot::from_bytes(&bytes),
        Err(StoreError::UnsupportedFlags { flags: 0x8000 })
    ));
}

#[test]
fn flipped_byte_in_each_section_names_that_section() {
    let clean = small_snapshot();
    // Locate sections via inspect on a temp file.
    let dir = std::env::temp_dir().join(format!("kdvs-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("probe.kdvs");
    std::fs::write(&path, &clean).unwrap();
    let info = Snapshot::inspect(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    for s in &info.sections {
        let mut bytes = clean.clone();
        let mid = (s.offset + s.len / 2) as usize;
        bytes[mid] ^= 0xFF;
        match Snapshot::from_bytes(&bytes) {
            Err(StoreError::ChecksumMismatch { section, .. }) => {
                assert_eq!(section, s.name, "wrong section blamed");
            }
            other => panic!(
                "flip inside {} produced {:?} instead of ChecksumMismatch",
                s.name,
                other.err().map(|e| e.to_string())
            ),
        }
    }
}

#[test]
fn checksum_clean_but_inconsistent_payload_is_rejected() {
    // A hostile writer can produce valid CRCs over nonsense. Re-sign a
    // tampered TOPO section (child pointing at itself) and confirm the
    // semantic layer catches it.
    let ps = Dataset::Crime.generate(120, 5);
    let tree = KdTree::build_default(&ps);
    let mut nodes = tree.nodes().to_vec();
    let internal = (0..nodes.len())
        .find(|&i| matches!(nodes[i].kind, kdv_index::NodeKind::Internal { .. }))
        .expect("tree has an internal node");
    if let kdv_index::NodeKind::Internal { left, .. } = &mut nodes[internal].kind {
        *left = kdv_index::NodeId(internal as u32);
    }
    let forged = KdTree::try_from_parts(tree.points().clone(), nodes, tree.root(), tree.config());
    // The index layer itself refuses; the store-level equivalent is the
    // Inconsistent variant mapped from the same check.
    assert!(forged.is_err());

    // Same defect at the byte level: corrupt, then fix the CRC so only
    // semantic validation can catch it. TOPO node record: kind u8,
    // a u32, b u32 … — point the root's left child back at node 0.
    let clean = small_snapshot();
    let dir = std::env::temp_dir().join(format!("kdvs-forge-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("probe.kdvs");
    std::fs::write(&path, &clean).unwrap();
    let info = Snapshot::inspect(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    let topo = info.sections.iter().find(|s| s.name == "TOPO").unwrap();

    let mut bytes = clean.clone();
    let rec = topo.offset as usize;
    assert_eq!(bytes[rec], 1, "root of a 120-point tree is internal");
    bytes[rec + 1..rec + 5].copy_from_slice(&0u32.to_le_bytes()); // left = root
                                                                  // Re-sign: section CRCs live in the table; recompute TOPO's and the
                                                                  // header CRC that covers the table.
    let table_entry = 20 + 24 * info.sections.iter().position(|s| s.name == "TOPO").unwrap();
    let crc = kdv_store::crc32::crc32(&bytes[rec..rec + topo.len as usize]);
    bytes[table_entry + 20..table_entry + 24].copy_from_slice(&crc.to_le_bytes());
    let table_end = 20 + 24 * info.sections.len();
    let hcrc = kdv_store::crc32::crc32(&bytes[..table_end]);
    bytes[table_end..table_end + 4].copy_from_slice(&hcrc.to_le_bytes());

    match Snapshot::from_bytes(&bytes) {
        Err(StoreError::Inconsistent { detail }) => {
            assert!(detail.contains("topology"), "unexpected detail: {detail}");
        }
        other => panic!(
            "forged topology produced {:?}",
            other.err().map(|e| e.to_string())
        ),
    }
}

#[test]
fn checksum_clean_but_hostile_pyramid_bound_is_rejected() {
    // Re-sign a PYRA section whose first certified bound was replaced
    // with NaN: the CRCs verify, so only the semantic range check can
    // refuse — a NaN certificate must never reach the level picker.
    let clean = pyramid_snapshot();
    let dir = std::env::temp_dir().join(format!("kdvs-pyra-forge-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("probe.kdvs");
    std::fs::write(&path, &clean).unwrap();
    let info = Snapshot::inspect(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let pyra_pos = info.sections.iter().position(|s| s.name == "PYRA").unwrap();
    let pyra = &info.sections[pyra_pos];
    let mut bytes = clean.clone();
    let off = pyra.offset as usize;
    bytes[off..off + 8].copy_from_slice(&f64::NAN.to_le_bytes());
    let table_entry = 20 + 24 * pyra_pos;
    let crc = kdv_store::crc32::crc32(&bytes[off..off + pyra.len as usize]);
    bytes[table_entry + 20..table_entry + 24].copy_from_slice(&crc.to_le_bytes());
    let table_end = 20 + 24 * info.sections.len();
    let hcrc = kdv_store::crc32::crc32(&bytes[..table_end]);
    bytes[table_end..table_end + 4].copy_from_slice(&hcrc.to_le_bytes());

    match Snapshot::from_bytes(&bytes) {
        Err(StoreError::Malformed { section, detail }) => {
            assert_eq!(section, "PYRA");
            assert!(detail.contains("ε_s"), "unexpected detail: {detail}");
        }
        other => panic!(
            "forged pyramid bound produced {:?}",
            other.err().map(|e| e.to_string())
        ),
    }
}

#[test]
fn io_errors_are_structured() {
    let missing = std::env::temp_dir().join("kdvs-definitely-missing.kdvs");
    assert!(matches!(
        Snapshot::open(&missing),
        Err(StoreError::Io {
            op: "read snapshot",
            ..
        })
    ));
}

#[test]
fn empty_and_tiny_files_are_truncation_errors() {
    for len in 0..20 {
        let bytes = vec![0u8; len];
        match Snapshot::from_bytes(&bytes) {
            Err(StoreError::Truncated { .. }) | Err(StoreError::BadMagic { .. }) => {}
            other => panic!(
                "{len}-byte file produced {:?}",
                other.err().map(|e| e.to_string())
            ),
        }
    }
}

//! WAL recovery under hostile files on disk: the replayer's contract is
//! that every acked (fully synced) record before the first damaged byte
//! survives, everything at or after it is discarded, and no byte
//! pattern panics. The sweeps here hit *real files* — truncation at
//! every offset and bit-flips at every offset — in the spirit of the
//! snapshot corruption suite.

use kdv_store::wal::{replay, WalOp, WalRecord, WalWriter, WAL_HEADER_LEN};
use kdv_store::{Snapshot, SnapshotWriter};
use std::path::PathBuf;

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("kdv-walrec-{}-{}", std::process::id(), name));
    p
}

fn records() -> Vec<WalRecord> {
    (1..=5u64)
        .map(|seq| WalRecord {
            seq,
            op: if seq % 3 == 0 {
                WalOp::Tombstone(vec![[seq as f64 * 0.1, 0.5]])
            } else {
                WalOp::Append(vec![
                    [seq as f64 * 0.1, 0.2, 1.0],
                    [seq as f64 * 0.1, 0.8, 0.5],
                ])
            },
        })
        .collect()
}

/// Writes the sample log, returning the file image and each record's
/// end offset (ends[0] is the header end).
fn build_log(path: &PathBuf) -> (Vec<u8>, Vec<u64>) {
    let mut w = WalWriter::create(path).unwrap();
    let mut ends = vec![WAL_HEADER_LEN];
    for r in records() {
        ends.push(w.append(&r).unwrap());
    }
    w.sync().unwrap();
    drop(w);
    (std::fs::read(path).unwrap(), ends)
}

#[test]
fn on_disk_truncation_at_every_offset_recovers_the_full_prefix() {
    let path = temp_path("trunc.wal");
    let (image, ends) = build_log(&path);
    for cut in 0..=image.len() {
        std::fs::write(&path, &image[..cut]).unwrap();
        let r = replay(&path).unwrap();
        let intact = ends.iter().filter(|&&e| e as usize <= cut).count();
        let intact = intact.saturating_sub(1);
        assert_eq!(r.records.len(), intact, "cut at {cut}");
        assert_eq!(r.records[..], records()[..intact], "cut at {cut}");
        // Reopening at valid_len must always succeed and leave an
        // appendable log.
        let mut w = WalWriter::open_at(&path, r.valid_len).unwrap();
        let next = WalRecord {
            seq: r.last_seq() + 1,
            op: WalOp::Append(vec![[0.9, 0.9, 1.0]]),
        };
        w.append(&next).unwrap();
        w.sync().unwrap();
        drop(w);
        let healed = replay(&path).unwrap();
        assert!(!healed.torn, "cut at {cut}: heal left a torn log");
        assert_eq!(healed.records.len(), intact + 1, "cut at {cut}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn on_disk_bit_flip_at_every_offset_never_panics_or_invents_data() {
    let path = temp_path("flip.wal");
    let (image, ends) = build_log(&path);
    let originals = records();
    for off in 0..image.len() {
        let mut bad = image.clone();
        bad[off] ^= 0x80;
        std::fs::write(&path, &bad).unwrap();
        let r = replay(&path).unwrap();
        // Whatever survives must be a clean prefix of what was written:
        // a flip may only shorten history, never alter or extend it.
        assert!(r.records.len() <= originals.len(), "flip at {off}");
        for (i, rec) in r.records.iter().enumerate() {
            assert_eq!(*rec, originals[i], "flip at {off} altered record {i}");
        }
        // Records wholly before the flipped byte must survive.
        let intact = ends.iter().filter(|&&e| e as usize <= off).count();
        let intact = intact.saturating_sub(1);
        assert!(
            r.records.len() >= intact || r.valid_len == 0,
            "flip at {off} lost an intact record"
        );
        assert!(r.valid_len as usize <= bad.len());
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn applied_seq_round_trips_through_the_snapshot() {
    let ps = kdv_data::emulate::Dataset::Crime.generate(80, 3);
    let tree = kdv_index::KdTree::build_default(&ps);
    let kernel = kdv_core::Kernel::gaussian(0.7);
    let plain = SnapshotWriter::new(&tree, kernel).to_bytes();
    assert_eq!(Snapshot::from_bytes(&plain).unwrap().applied_seq, 0);
    let marked = SnapshotWriter::new(&tree, kernel)
        .with_applied_seq(42)
        .to_bytes();
    let snap = Snapshot::from_bytes(&marked).unwrap();
    assert_eq!(snap.applied_seq, 42);
    // The watermark section is checksummed like everything else.
    let mut bad = marked.clone();
    let off = bad.len() - 4;
    bad[off] ^= 0xFF;
    assert!(Snapshot::from_bytes(&bad).is_err());
}

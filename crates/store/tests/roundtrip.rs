//! Round-trip property: a loaded snapshot is indistinguishable from the
//! tree it was written from — bit-identical moments, bit-identical
//! `render_eps`/`render_tau` output — across the synthetic datasets and
//! every kernel family.

use kdv_core::{BoundFamily, Kernel, KernelType, RasterSpec, RefineEvaluator};
use kdv_data::emulate::Dataset;
use kdv_index::{BuildConfig, KdTree};
use kdv_sampling::zorder_sample;
use kdv_store::{Snapshot, SnapshotWriter};
use kdv_viz::render::{render_eps, render_tau};

fn build(dataset: Dataset, n: usize, seed: u64) -> KdTree {
    let ps = dataset.generate(n, seed);
    KdTree::build_default(&ps)
}

fn round_trip(tree: &KdTree, kernel: Kernel) -> Snapshot {
    let bytes = SnapshotWriter::new(tree, kernel).to_bytes();
    Snapshot::from_bytes(&bytes).expect("own snapshot must load")
}

#[test]
fn moments_and_points_are_bit_identical() {
    for (dataset, seed) in [
        (Dataset::Crime, 1u64),
        (Dataset::ElNino, 2),
        (Dataset::Home, 3),
    ] {
        let tree = build(dataset, 3000, seed);
        let snap = round_trip(&tree, Kernel::gaussian(0.7));
        assert_eq!(snap.tree.num_nodes(), tree.num_nodes());
        assert_eq!(snap.tree.points().coords(), tree.points().coords());
        assert_eq!(snap.tree.points().weights(), tree.points().weights());
        for (a, b) in tree.nodes().iter().zip(snap.tree.nodes()) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.depth, b.depth);
            assert_eq!(a.mbr, b.mbr);
            // Bit-level, not approximate: the format stores raw f64s.
            assert_eq!(a.stats.weight.to_bits(), b.stats.weight.to_bits());
            assert_eq!(a.stats.sum_norm2.to_bits(), b.stats.sum_norm2.to_bits());
            assert_eq!(a.stats.sum_norm4.to_bits(), b.stats.sum_norm4.to_bits());
            assert_eq!(a.stats.sum, b.stats.sum);
            assert_eq!(a.stats.sum_norm2_p, b.stats.sum_norm2_p);
            assert_eq!(a.stats.moment2, b.stats.moment2);
        }
    }
}

#[test]
fn renders_are_bit_identical_for_every_kernel() {
    let tree = build(Dataset::Crime, 2500, 7);
    for ty in KernelType::ALL {
        let kernel = Kernel::new(ty, 0.9);
        let snap = round_trip(&tree, kernel);
        assert_eq!(snap.kernel, kernel);

        let raster = RasterSpec::try_covering(tree.points(), 48, 36, 0.05).unwrap();
        let mut ev_a = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut ev_b = RefineEvaluator::new(&snap.tree, kernel, BoundFamily::Quadratic);

        let eps_a = render_eps(&mut ev_a, &raster, 0.01);
        let eps_b = render_eps(&mut ev_b, &raster, 0.01);
        for (a, b) in eps_a.values().iter().zip(eps_b.values()) {
            assert_eq!(a.to_bits(), b.to_bits(), "εKDV diverged for {ty:?}");
        }

        let tau = tree.points().total_weight() * 0.02;
        let mut ev_a = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut ev_b = RefineEvaluator::new(&snap.tree, kernel, BoundFamily::Quadratic);
        let tau_a = render_tau(&mut ev_a, &raster, tau);
        let tau_b = render_tau(&mut ev_b, &raster, tau);
        assert_eq!(tau_a.disagreement(&tau_b), 0.0, "τKDV diverged for {ty:?}");
    }
}

#[test]
fn non_default_build_config_survives() {
    let ps = Dataset::ElNino.generate(1500, 11);
    let cfg = BuildConfig {
        leaf_capacity: 8,
        split: kdv_index::SplitRule::WidestAxisMidpoint,
    };
    let tree = KdTree::build(&ps, cfg);
    let snap = round_trip(&tree, Kernel::gaussian(0.5));
    assert_eq!(snap.tree.config(), cfg);
    assert_eq!(snap.meta.leaf_capacity, 8);
}

#[test]
fn coreset_levels_round_trip() {
    let ps = Dataset::Home.generate(4000, 13);
    let tree = KdTree::build_default(&ps);
    let levels = vec![
        zorder_sample(tree.points(), 1000, 0.25),
        zorder_sample(tree.points(), 250, 0.25),
    ];
    let bytes = SnapshotWriter::new(&tree, Kernel::gaussian(0.4))
        .with_coresets(levels.clone())
        .to_bytes();
    let snap = Snapshot::from_bytes(&bytes).unwrap();
    assert_eq!(snap.meta.coreset_levels, 2);
    assert_eq!(snap.coresets.len(), 2);
    for (a, b) in levels.iter().zip(&snap.coresets) {
        assert_eq!(a.coords(), b.coords());
        assert_eq!(a.weights(), b.weights());
    }
}

#[test]
fn pyramid_bounds_round_trip() {
    let ps = Dataset::Home.generate(4000, 13);
    let tree = KdTree::build_default(&ps);
    let levels = vec![
        (zorder_sample(tree.points(), 250, 0.25), 0.17),
        (zorder_sample(tree.points(), 1000, 0.25), 0.086),
    ];
    let bytes = SnapshotWriter::new(&tree, Kernel::gaussian(0.4))
        .with_pyramid(levels.clone())
        .to_bytes();
    let snap = Snapshot::from_bytes(&bytes).unwrap();
    assert_eq!(snap.meta.coreset_levels, 2);
    assert_eq!(snap.level_bounds, vec![0.17, 0.086]);
    for ((a, _), b) in levels.iter().zip(&snap.coresets) {
        assert_eq!(a.coords(), b.coords());
        assert_eq!(a.weights(), b.weights());
    }

    // Plain coresets (no PYRA) report no certified bounds.
    let plain = SnapshotWriter::new(&tree, Kernel::gaussian(0.4))
        .with_coresets(vec![zorder_sample(tree.points(), 250, 0.25)])
        .to_bytes();
    let snap = Snapshot::from_bytes(&plain).unwrap();
    assert!(snap.level_bounds.is_empty());
    assert_eq!(snap.coresets.len(), 1);

    // A PYRA flag/section pair forged onto a file without coresets
    // must fail structurally — exercised via the writer's own bytes
    // with a misordered ladder.
    let result = std::panic::catch_unwind(|| {
        SnapshotWriter::new(&tree, Kernel::gaussian(0.4)).with_pyramid(vec![
            (zorder_sample(tree.points(), 1000, 0.25), 0.086),
            (zorder_sample(tree.points(), 250, 0.25), 0.17),
        ])
    });
    assert!(result.is_err(), "misordered ladder is a writer bug");
}

#[test]
fn file_round_trip_and_inspect() {
    let dir = std::env::temp_dir().join(format!("kdvs-rt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("crime.kdvs");

    let tree = build(Dataset::Crime, 2000, 17);
    let written = SnapshotWriter::new(&tree, Kernel::gaussian(0.6))
        .write_to(&path)
        .unwrap();
    assert_eq!(written, std::fs::metadata(&path).unwrap().len());

    let snap = Snapshot::open(&path).unwrap();
    assert_eq!(snap.meta.point_count, 2000);
    snap.verify_deep()
        .expect("fresh snapshot passes deep verify");

    let info = Snapshot::inspect(&path).unwrap();
    assert_eq!(info.version, kdv_store::FORMAT_VERSION);
    assert_eq!(info.file_len, written);
    let names: Vec<_> = info.sections.iter().map(|s| s.name).collect();
    assert_eq!(names, ["META", "PNTS", "TOPO", "MOMT"]);

    std::fs::remove_dir_all(&dir).ok();
}

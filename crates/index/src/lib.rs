//! kd-tree spatial index with augmented moment statistics.
//!
//! The QUAD paper's refinement framework (§3.2) runs on a hierarchical
//! index whose nodes expose, besides a bounding rectangle, the
//! precomputed aggregates needed to evaluate bound functions without
//! touching individual points:
//!
//! | symbol | definition | needed by |
//! |---|---|---|
//! | `W`   | `Σ wᵢ`            | every bound |
//! | `a_P` | `Σ wᵢ pᵢ`         | KARL linear (§3.3), QUAD (§4) |
//! | `b_P` | `Σ wᵢ ‖pᵢ‖²`      | KARL linear, QUAD |
//! | `v_P` | `Σ wᵢ ‖pᵢ‖² pᵢ`   | QUAD Gaussian (Lemma 3) |
//! | `h_P` | `Σ wᵢ ‖pᵢ‖⁴`      | QUAD Gaussian (Lemma 3) |
//! | `C`   | `Σ wᵢ pᵢ pᵢᵀ`     | QUAD Gaussian (Lemma 3) |
//!
//! These generalize the paper's uniform-weight aggregates to per-point
//! weights so that re-weighted Z-order coresets reuse the same engine.
//!
//! The tree is stored as a flat arena (nodes indexed by
//! [`NodeId`]) and the point set is reordered during construction so that
//! every leaf owns a contiguous coordinate range — leaf scans during
//! exact refinement are purely sequential memory traffic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod error;
pub mod node;
pub mod stats;

pub use build::{BuildConfig, KdTree, SplitRule};
pub use error::BuildError;
pub use node::{Node, NodeId, NodeKind};
pub use stats::NodeStats;

//! Node moment statistics and their query-time contractions.

use kdv_geom::vecmath::axpy;

/// Precomputed weighted moments of the points under one index node.
///
/// See the crate-level table for the paper correspondence. All moments
/// are additive, so internal nodes are the [`NodeStats::merge`] of their
/// children — the whole tree's statistics cost one bottom-up pass.
///
/// # Centered storage
///
/// Moments are stored in a frame translated by `center` (the builder
/// passes the dataset centroid): `a_P = Σ wᵢ (pᵢ − c)` etc. Distances
/// are translation-invariant, so the contractions below translate the
/// query by the same `c` and produce identical mathematical results —
/// but the *numerics* change completely. In the raw frame, a dataset at
/// geographic coordinates (say ‖p‖ ≈ 90) with kernel-scale distances
/// ≈ 10⁻² makes the fourth-moment identity cancel ‖q‖⁴ ≈ 7·10⁷ down to
/// ≈ 10⁻⁸ — losing *all* 16 digits. Centering bounds every term by the
/// data spread, keeping the identities accurate to ~10⁻¹¹ relative.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeStats {
    /// Translation applied to every point (`c`, usually the dataset
    /// centroid; length `d`).
    pub center: Vec<f64>,
    /// `W = Σ wᵢ`.
    pub weight: f64,
    /// `a_P = Σ wᵢ (pᵢ − c)` (length `d`).
    pub sum: Vec<f64>,
    /// `b_P = Σ wᵢ ‖pᵢ − c‖²`.
    pub sum_norm2: f64,
    /// `v_P = Σ wᵢ ‖pᵢ − c‖² (pᵢ − c)` (length `d`).
    pub sum_norm2_p: Vec<f64>,
    /// `h_P = Σ wᵢ ‖pᵢ − c‖⁴`.
    pub sum_norm4: f64,
    /// `C = Σ wᵢ (pᵢ − c)(pᵢ − c)ᵀ`, row-major `d × d`.
    pub moment2: Vec<f64>,
}

impl NodeStats {
    /// An all-zero accumulator for dimensionality `d`, centered at the
    /// origin (fine for data whose coordinates are already near 0; the
    /// kd-tree builder always uses [`NodeStats::zero_at`]).
    pub fn zero(d: usize) -> Self {
        Self::zero_at(vec![0.0; d])
    }

    /// An all-zero accumulator centered at `center`.
    pub fn zero_at(center: Vec<f64>) -> Self {
        let d = center.len();
        Self {
            center,
            weight: 0.0,
            sum: vec![0.0; d],
            sum_norm2: 0.0,
            sum_norm2_p: vec![0.0; d],
            sum_norm4: 0.0,
            moment2: vec![0.0; d * d],
        }
    }

    /// Dimensionality the statistics were built for.
    #[inline]
    pub fn dim(&self) -> usize {
        self.sum.len()
    }

    /// Folds one weighted point into the moments.
    pub fn accumulate(&mut self, p: &[f64], w: f64) {
        let d = self.dim();
        debug_assert_eq!(p.len(), d);
        let mut n2 = 0.0;
        for (j, &pj) in p.iter().enumerate() {
            let u = pj - self.center[j];
            n2 += u * u;
        }
        self.weight += w;
        self.sum_norm2 += w * n2;
        self.sum_norm4 += w * n2 * n2;
        for i in 0..d {
            let ui = p[i] - self.center[i];
            self.sum[i] += w * ui;
            self.sum_norm2_p[i] += w * n2 * ui;
            let wui = w * ui;
            let row = &mut self.moment2[i * d..(i + 1) * d];
            for (j, slot) in row.iter_mut().enumerate() {
                *slot += wui * (p[j] - self.center[j]);
            }
        }
    }

    /// Adds another node's moments into this one (children → parent).
    ///
    /// # Panics
    /// Panics on dimensionality or center mismatch — all nodes of one
    /// tree share the same center, so no re-centering math is needed.
    pub fn merge(&mut self, other: &NodeStats) {
        assert_eq!(self.dim(), other.dim(), "stats dimensionality mismatch");
        assert_eq!(self.center, other.center, "stats center mismatch");
        self.weight += other.weight;
        axpy(&mut self.sum, 1.0, &other.sum);
        self.sum_norm2 += other.sum_norm2;
        axpy(&mut self.sum_norm2_p, 1.0, &other.sum_norm2_p);
        self.sum_norm4 += other.sum_norm4;
        axpy(&mut self.moment2, 1.0, &other.moment2);
    }

    /// Translates `q` into this frame (`q̃ = q − c`), writing into `out`.
    ///
    /// Hot-path callers (the refinement engine issues millions of bound
    /// evaluations per frame) translate once per query and feed the
    /// result to [`NodeStats::sum_dist2_pre`]/[`NodeStats::sum_dist4_pre`]
    /// for every node — all nodes of one tree share the center.
    #[inline]
    pub fn translate_query(&self, q: &[f64], out: &mut [f64]) {
        debug_assert_eq!(q.len(), self.dim());
        debug_assert_eq!(out.len(), self.dim());
        for ((o, &qj), &cj) in out.iter_mut().zip(q).zip(&self.center) {
            *o = qj - cj;
        }
    }

    /// Weighted sum of squared distances to `q`:
    ///
    /// `Σ wᵢ dist(q, pᵢ)² = W‖q̃‖² − 2 q̃·a_P + b_P`,  `q̃ = q − c`
    ///
    /// — the `O(d)` identity of the paper's §3.3 that makes KARL's
    /// linear bounds (and QUAD's distance-kernel bounds) cheap.
    #[inline]
    pub fn sum_dist2(&self, q: &[f64]) -> f64 {
        let d = self.dim();
        debug_assert_eq!(q.len(), d);
        let mut qn2 = 0.0;
        let mut qa = 0.0;
        for ((&qj, &cj), &aj) in q.iter().zip(&self.center).zip(&self.sum) {
            let t = qj - cj;
            qn2 += t * t;
            qa += t * aj;
        }
        // Exact value is ≥ 0; floating-point cancellation can leave a
        // tiny negative residue which would poison sqrt() callers.
        (self.weight * qn2 - 2.0 * qa + self.sum_norm2).max(0.0)
    }

    /// [`NodeStats::sum_dist2`] on a pre-translated query `q̃ = q − c`.
    #[inline]
    pub fn sum_dist2_pre(&self, qt: &[f64]) -> f64 {
        let d = self.dim();
        debug_assert_eq!(qt.len(), d);
        // Zipped slice walk: no index bounds checks, so the two
        // accumulator chains vectorize; each chain's op order is
        // unchanged, so results are bit-identical to the indexed form.
        let mut qn2 = 0.0;
        let mut qa = 0.0;
        for (&t, &aj) in qt.iter().zip(&self.sum) {
            qn2 += t * t;
            qa += t * aj;
        }
        (self.weight * qn2 - 2.0 * qa + self.sum_norm2).max(0.0)
    }

    /// Weighted sum of fourth powers of distances to `q`:
    ///
    /// `Σ wᵢ dist⁴ = W‖q̃‖⁴ − 4‖q̃‖² q̃·a_P − 4 q̃·v_P + 2‖q̃‖² b_P
    ///               + h_P + 4 q̃ᵀ C q̃`,  `q̃ = q − c`
    ///
    /// — Lemma 3's `O(d²)` expansion powering QUAD's Gaussian bounds.
    #[inline]
    pub fn sum_dist4(&self, q: &[f64]) -> f64 {
        let d = self.dim();
        debug_assert_eq!(q.len(), d);
        // Stack buffer for the translated query at KDV-scale dims; the
        // heap fallback only triggers beyond d = 16.
        let mut stack = [0.0f64; 16];
        if d <= 16 {
            self.translate_query(q, &mut stack[..d]);
            self.sum_dist4_pre(&stack[..d])
        } else {
            let mut buf = vec![0.0; d];
            self.translate_query(q, &mut buf);
            self.sum_dist4_pre(&buf)
        }
    }

    /// Both contractions in one pass over the moments:
    /// `(Σ wᵢ dist², Σ wᵢ dist⁴)` for a pre-translated query.
    ///
    /// QUAD's Gaussian bounds need both; fusing saves the second walk
    /// over `q̃` and `a_P` on the hot path.
    #[inline]
    pub fn sum_dist2_dist4_pre(&self, qt: &[f64]) -> (f64, f64) {
        let d = self.dim();
        debug_assert_eq!(qt.len(), d);
        let mut qn2 = 0.0;
        let mut qa = 0.0;
        let mut qv = 0.0;
        for ((&t, &aj), &vj) in qt.iter().zip(&self.sum).zip(&self.sum_norm2_p) {
            qn2 += t * t;
            qa += t * aj;
            qv += t * vj;
        }
        let s2 = (self.weight * qn2 - 2.0 * qa + self.sum_norm2).max(0.0);
        let qcq = kdv_geom::vecmath::quadratic_form(&self.moment2, qt);
        let s4 = (self.weight * qn2 * qn2 - 4.0 * qn2 * qa - 4.0 * qv
            + 2.0 * qn2 * self.sum_norm2
            + self.sum_norm4
            + 4.0 * qcq)
            .max(0.0);
        (s2, s4)
    }

    /// [`NodeStats::sum_dist4`] on a pre-translated query `q̃ = q − c`.
    #[inline]
    pub fn sum_dist4_pre(&self, qt: &[f64]) -> f64 {
        let d = self.dim();
        debug_assert_eq!(qt.len(), d);
        let mut qn2 = 0.0;
        let mut qa = 0.0;
        let mut qv = 0.0;
        for ((&t, &aj), &vj) in qt.iter().zip(&self.sum).zip(&self.sum_norm2_p) {
            qn2 += t * t;
            qa += t * aj;
            qv += t * vj;
        }
        let qcq = kdv_geom::vecmath::quadratic_form(&self.moment2, qt);
        let v = self.weight * qn2 * qn2 - 4.0 * qn2 * qa - 4.0 * qv
            + 2.0 * qn2 * self.sum_norm2
            + self.sum_norm4
            + 4.0 * qcq;
        v.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_geom::vecmath::dist2;
    use kdv_geom::PointSet;
    use proptest::prelude::*;

    fn stats_of(ps: &PointSet) -> NodeStats {
        let mut s = NodeStats::zero(ps.dim());
        for pr in ps.iter() {
            s.accumulate(pr.coords, pr.weight);
        }
        s
    }

    fn stats_of_centered(ps: &PointSet) -> NodeStats {
        let mut s = NodeStats::zero_at(ps.mean().expect("non-empty"));
        for pr in ps.iter() {
            s.accumulate(pr.coords, pr.weight);
        }
        s
    }

    fn brute_sum_dist2(ps: &PointSet, q: &[f64]) -> f64 {
        ps.iter().map(|p| p.weight * dist2(q, p.coords)).sum()
    }

    fn brute_sum_dist4(ps: &PointSet, q: &[f64]) -> f64 {
        ps.iter()
            .map(|p| {
                let d2 = dist2(q, p.coords);
                p.weight * d2 * d2
            })
            .sum()
    }

    #[test]
    fn accumulate_matches_hand_moments() {
        let ps = PointSet::from_rows(2, &[1.0, 0.0, 0.0, 2.0]);
        let s = stats_of(&ps);
        assert_eq!(s.weight, 2.0);
        assert_eq!(s.sum, vec![1.0, 2.0]);
        assert_eq!(s.sum_norm2, 5.0); // 1 + 4
        assert_eq!(s.sum_norm2_p, vec![1.0, 8.0]); // 1·(1,0) + 4·(0,2)
        assert_eq!(s.sum_norm4, 17.0); // 1 + 16
                                       // C = (1,0)(1,0)ᵀ + (0,2)(0,2)ᵀ = [[1,0],[0,4]]
        assert_eq!(s.moment2, vec![1.0, 0.0, 0.0, 4.0]);
    }

    #[test]
    fn merge_equals_joint_accumulation() {
        let a = PointSet::from_rows(2, &[1.0, 2.0, -3.0, 0.5]);
        let b = PointSet::from_rows(2, &[0.0, -1.0]);
        let mut merged = stats_of(&a);
        merged.merge(&stats_of(&b));
        let mut joint = PointSet::new(2);
        for pr in a.iter().chain(b.iter()) {
            joint.push_weighted(pr.coords, pr.weight);
        }
        let expect = stats_of(&joint);
        assert!((merged.weight - expect.weight).abs() < 1e-12);
        assert!((merged.sum_norm4 - expect.sum_norm4).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "center mismatch")]
    fn merge_rejects_different_centers() {
        let mut a = NodeStats::zero_at(vec![0.0, 0.0]);
        let b = NodeStats::zero_at(vec![1.0, 0.0]);
        a.merge(&b);
    }

    #[test]
    fn sum_dist2_zero_for_identical_points() {
        let ps = PointSet::from_rows(2, &[3.0, 4.0, 3.0, 4.0]);
        let s = stats_of(&ps);
        assert!(s.sum_dist2(&[3.0, 4.0]).abs() < 1e-9);
    }

    #[test]
    fn centered_stats_survive_large_coordinate_offsets() {
        // The crime-dataset regime that breaks the raw identities:
        // coordinates offset by ~(−84, 34), spreads ~10⁻².
        let flat = [
            -84.40, 33.750, -84.41, 33.752, -84.395, 33.748, -84.405, 33.751,
        ];
        let ps = PointSet::from_rows(2, &flat);
        let q = [-84.402, 33.7505];
        let s = stats_of_centered(&ps);
        let e2 = brute_sum_dist2(&ps, &q);
        let e4 = brute_sum_dist4(&ps, &q);
        assert!(
            (s.sum_dist2(&q) - e2).abs() <= 1e-9 * e2,
            "dist²: {} vs {}",
            s.sum_dist2(&q),
            e2
        );
        assert!(
            (s.sum_dist4(&q) - e4).abs() <= 1e-7 * e4,
            "dist⁴: {} vs {}",
            s.sum_dist4(&q),
            e4
        );
    }

    proptest! {
        #[test]
        fn sum_dist2_matches_brute_force(
            flat in proptest::collection::vec(-50.0..50.0f64, 2..40),
            q in proptest::collection::vec(-60.0..60.0f64, 2),
        ) {
            let n = flat.len() / 2 * 2;
            let ps = PointSet::from_rows(2, &flat[..n]);
            let s = stats_of(&ps);
            let expect = brute_sum_dist2(&ps, &q);
            prop_assert!((s.sum_dist2(&q) - expect).abs() <= 1e-6 * (1.0 + expect.abs()));
        }

        #[test]
        fn sum_dist4_matches_brute_force(
            flat in proptest::collection::vec(-20.0..20.0f64, 2..40),
            q in proptest::collection::vec(-25.0..25.0f64, 2),
        ) {
            let n = flat.len() / 2 * 2;
            let ps = PointSet::from_rows(2, &flat[..n]);
            let s = stats_of(&ps);
            let expect = brute_sum_dist4(&ps, &q);
            prop_assert!((s.sum_dist4(&q) - expect).abs() <= 1e-6 * (1.0 + expect.abs()));
        }

        #[test]
        fn weighted_moments_match_brute_force_3d(
            rows in proptest::collection::vec(
                (proptest::collection::vec(-10.0..10.0f64, 3), 0.0..5.0f64), 1..25),
            q in proptest::collection::vec(-12.0..12.0f64, 3),
        ) {
            let mut ps = PointSet::new(3);
            for (p, w) in &rows {
                ps.push_weighted(p, *w);
            }
            let s = stats_of(&ps);
            let e2 = brute_sum_dist2(&ps, &q);
            let e4 = brute_sum_dist4(&ps, &q);
            prop_assert!((s.sum_dist2(&q) - e2).abs() <= 1e-6 * (1.0 + e2.abs()));
            prop_assert!((s.sum_dist4(&q) - e4).abs() <= 1e-5 * (1.0 + e4.abs()));
        }

        /// Centered and origin-centered stats agree on well-conditioned
        /// data, and centered stats stay accurate under huge offsets.
        #[test]
        fn centering_is_translation_invariant(
            flat in proptest::collection::vec(-5.0..5.0f64, 4..30),
            q in proptest::collection::vec(-6.0..6.0f64, 2),
            offset in -1e4..1e4f64,
        ) {
            let n = flat.len() / 2 * 2;
            let shifted: Vec<f64> = flat[..n].iter().map(|v| v + offset).collect();
            let ps = PointSet::from_rows(2, &shifted);
            let qs: Vec<f64> = q.iter().map(|v| v + offset).collect();
            let s = stats_of_centered(&ps);
            let e2 = brute_sum_dist2(&ps, &qs);
            let e4 = brute_sum_dist4(&ps, &qs);
            prop_assert!((s.sum_dist2(&qs) - e2).abs() <= 1e-7 * (1.0 + e2.abs()));
            prop_assert!((s.sum_dist4(&qs) - e4).abs() <= 1e-6 * (1.0 + e4.abs()));
        }
    }
}

//! kd-tree construction.
//!
//! The builder recursively splits on the widest axis of the node's MBR at
//! the median coordinate (the classic balanced kd-tree used by
//! Scikit-learn's `KDTree`, which the paper names as the default index
//! for εKDV — §3.2 footnote 6). Points are physically reordered so each
//! leaf owns a contiguous slice, and node moments are computed bottom-up.

use crate::error::BuildError;
use crate::node::{Node, NodeId, NodeKind};
use crate::stats::NodeStats;
use kdv_geom::{Mbr, PointColumns, PointSet};

/// How an internal node picks its split plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitRule {
    /// Median coordinate on the MBR's widest axis — the balanced
    /// kd-tree of Scikit-learn's `KDTree` (paper §3.2 footnote 6).
    #[default]
    WidestAxisMedian,
    /// Median coordinate on the axis of maximum sample *variance*
    /// (adapts to skew the extent misses; slightly costlier to build).
    MaxVarianceAxisMedian,
    /// Spatial midpoint of the widest axis (BSP/quadtree-like; yields
    /// cube-ish MBRs — tighter distance intervals — at the price of an
    /// unbalanced tree). Falls back to the median when one side would
    /// be empty.
    WidestAxisMidpoint,
}

impl SplitRule {
    /// All rules, for the split ablation bench.
    pub const ALL: [SplitRule; 3] = [
        SplitRule::WidestAxisMedian,
        SplitRule::MaxVarianceAxisMedian,
        SplitRule::WidestAxisMidpoint,
    ];
}

/// Construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildConfig {
    /// Maximum number of points per leaf. The paper does not publish the
    /// authors' value; 32 balances bound-evaluation overhead against
    /// leaf-scan cost (see the `kdtree_build` ablation bench).
    pub leaf_capacity: usize,
    /// Split-plane selection rule.
    pub split: SplitRule,
}

impl Default for BuildConfig {
    fn default() -> Self {
        Self {
            leaf_capacity: 32,
            split: SplitRule::default(),
        }
    }
}

/// A balanced kd-tree over a (reordered) weighted point set, with the
/// augmented moment statistics of the crate-level table on every node.
#[derive(Debug, Clone)]
pub struct KdTree {
    points: PointSet,
    /// Column-major (structure-of-arrays) view of `points`, derived
    /// after the physical leaf reorder so every leaf's coordinates are
    /// contiguous per dimension — the layout the SIMD leaf scans read.
    /// Rebuilt by every constructor (including the snapshot-load path
    /// through [`KdTree::try_from_parts`]); never serialized.
    cols: PointColumns,
    nodes: Vec<Node>,
    root: NodeId,
    config: BuildConfig,
}

impl KdTree {
    /// Builds the index over `points`.
    ///
    /// # Examples
    /// ```
    /// use kdv_geom::PointSet;
    /// use kdv_index::{BuildConfig, KdTree};
    ///
    /// let ps = PointSet::from_rows(2, &[0.0, 0.0, 1.0, 1.0, 2.0, 0.5, 3.0, 3.0]);
    /// let tree = KdTree::build(&ps, BuildConfig { leaf_capacity: 2, ..Default::default() });
    /// assert_eq!(tree.node(tree.root()).point_count(), 4);
    /// assert!(tree.num_leaves() >= 2);
    /// ```
    ///
    /// # Panics
    /// Panics if `points` is empty, `config.leaf_capacity == 0`, or the
    /// set contains non-finite coordinates or weights — see
    /// [`KdTree::try_build`] for the fallible variant.
    pub fn build(points: &PointSet, config: BuildConfig) -> Self {
        Self::try_build(points, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`KdTree::build`]: rejects an empty point set, a zero
    /// leaf capacity, and non-finite coordinates/weights with a
    /// structured [`BuildError`] instead of panicking. Degenerate *but
    /// finite* geometry — all points identical, collinear points,
    /// zero-extent MBRs — builds a valid (possibly single-leaf) tree.
    pub fn try_build(points: &PointSet, config: BuildConfig) -> Result<Self, BuildError> {
        if points.is_empty() {
            return Err(BuildError::EmptyPointSet);
        }
        if config.leaf_capacity == 0 {
            return Err(BuildError::ZeroLeafCapacity);
        }
        for i in 0..points.len() {
            if let Some(axis) = points.point(i).iter().position(|c| !c.is_finite()) {
                return Err(BuildError::NonFiniteCoordinate { point: i, axis });
            }
            if !points.weight(i).is_finite() {
                return Err(BuildError::NonFiniteWeight { point: i });
            }
        }
        let mut perm: Vec<u32> = (0..points.len() as u32).collect();
        let mut nodes = Vec::new();
        // All node moments share one frame centered at the dataset
        // centroid — see `NodeStats` for why this is load-bearing for
        // numerical accuracy on offset coordinates.
        let center = points.mean().expect("non-empty");
        let root = build_recursive(points, &center, &mut perm, 0, &mut nodes, 0, &config);
        // Physically reorder points so leaf ranges are contiguous.
        let indices: Vec<usize> = perm.iter().map(|&i| i as usize).collect();
        let reordered = points.select(&indices);
        let cols = PointColumns::from_points(&reordered);
        Ok(Self {
            points: reordered,
            cols,
            nodes,
            root,
            config,
        })
    }

    /// Builds with the default configuration.
    pub fn build_default(points: &PointSet) -> Self {
        Self::build(points, BuildConfig::default())
    }

    /// Fallible [`KdTree::build_default`].
    pub fn try_build_default(points: &PointSet) -> Result<Self, BuildError> {
        Self::try_build(points, BuildConfig::default())
    }

    /// The root node id.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Immutable access to a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The reordered point set the tree owns.
    #[inline]
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    /// Column-major view of [`KdTree::points`], aligned with the same
    /// physical leaf order: a leaf's range indexes contiguous
    /// per-dimension slices. This is what the engine's SIMD leaf scans
    /// read instead of the row-major point rows.
    #[inline]
    pub fn columns(&self) -> &PointColumns {
        &self.cols
    }

    /// The contiguous point range `[start, end)` a leaf owns in the
    /// reordered point set (and in [`KdTree::columns`]).
    ///
    /// # Panics
    /// Panics if `id` is not a leaf.
    #[inline]
    pub fn leaf_range(&self, id: NodeId) -> (usize, usize) {
        match self.node(id).kind {
            NodeKind::Leaf { start, end } => (start as usize, end as usize),
            NodeKind::Internal { .. } => panic!("leaf_range called on internal node"),
        }
    }

    /// Number of nodes in the arena.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Maximum node depth.
    pub fn depth(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.depth as usize)
            .max()
            .unwrap_or(0)
    }

    /// The configuration the tree was built with.
    #[inline]
    pub fn config(&self) -> BuildConfig {
        self.config
    }

    /// Iterates `(coords, weight)` of the points under a leaf.
    ///
    /// # Panics
    /// Panics if `id` is not a leaf.
    pub fn leaf_points(&self, id: NodeId) -> impl Iterator<Item = (&[f64], f64)> + '_ {
        let (start, end) = match self.node(id).kind {
            NodeKind::Leaf { start, end } => (start as usize, end as usize),
            NodeKind::Internal { .. } => panic!("leaf_points called on internal node"),
        };
        (start..end).map(move |i| (self.points.point(i), self.points.weight(i)))
    }

    /// Visits every node depth-first, passing ids to `f`.
    pub fn for_each_node(&self, mut f: impl FnMut(NodeId, &Node)) {
        for (i, n) in self.nodes.iter().enumerate() {
            f(NodeId(i as u32), n);
        }
    }

    /// Read-only access to the node arena in build order (the order
    /// [`KdTree::for_each_node`] visits; `NodeId(i)` is `nodes()[i]`).
    /// Snapshot serialization walks this slice directly.
    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Reassembles a tree from externally-supplied parts — the inverse
    /// of reading [`KdTree::points`] and [`KdTree::nodes`] back out —
    /// validating every invariant the builder would have established:
    ///
    /// * points are non-empty with finite coordinates and weights,
    /// * every node id is in range, children come *after* their parent
    ///   in the arena (build order), each node is reachable from the
    ///   root exactly once, and depths increase by one per level,
    /// * leaf ranges partition `[0, len)` exactly,
    /// * node counts are consistent bottom-up,
    /// * all moments are finite, share one center, and every internal
    ///   node's moments equal the sum of its children's (to floating-
    ///   point tolerance).
    ///
    /// `kdv-store` uses this as the trust boundary between decoded
    /// snapshot bytes and the query engine: a snapshot whose sections
    /// pass their checksums can still be *semantically* inconsistent
    /// (a buggy or hostile writer), and this is where that is caught.
    pub fn try_from_parts(
        points: PointSet,
        nodes: Vec<Node>,
        root: NodeId,
        config: BuildConfig,
    ) -> Result<Self, BuildError> {
        if points.is_empty() {
            return Err(BuildError::EmptyPointSet);
        }
        if config.leaf_capacity == 0 {
            return Err(BuildError::ZeroLeafCapacity);
        }
        for i in 0..points.len() {
            if let Some(axis) = points.point(i).iter().position(|c| !c.is_finite()) {
                return Err(BuildError::NonFiniteCoordinate { point: i, axis });
            }
            if !points.weight(i).is_finite() {
                return Err(BuildError::NonFiniteWeight { point: i });
            }
        }
        let topo = |detail: String| BuildError::InvalidTopology { detail };
        let moments = |detail: String| BuildError::InvalidMoments { detail };
        let n = points.len();
        let d = points.dim();
        if nodes.is_empty() {
            return Err(topo("node arena is empty".into()));
        }
        if root.index() >= nodes.len() {
            return Err(topo(format!(
                "root id {} out of range ({} nodes)",
                root.0,
                nodes.len()
            )));
        }
        let center = nodes[root.index()].stats.center.clone();
        for (i, node) in nodes.iter().enumerate() {
            if node.mbr.dim() != d {
                return Err(topo(format!(
                    "node {i}: MBR dimensionality {} != point dimensionality {d}",
                    node.mbr.dim()
                )));
            }
            let s = &node.stats;
            if s.dim() != d {
                return Err(moments(format!(
                    "node {i}: moment dimensionality {} != point dimensionality {d}",
                    s.dim()
                )));
            }
            if s.center != center {
                return Err(moments(format!(
                    "node {i}: moment center differs from the root's"
                )));
            }
            let finite = s.weight.is_finite()
                && s.weight >= 0.0
                && s.sum_norm2.is_finite()
                && s.sum_norm4.is_finite()
                && s.sum.iter().all(|v| v.is_finite())
                && s.sum_norm2_p.iter().all(|v| v.is_finite())
                && s.moment2.iter().all(|v| v.is_finite())
                && s.center.iter().all(|v| v.is_finite());
            if !finite {
                return Err(moments(format!("node {i}: non-finite moment")));
            }
        }
        // Reachability walk: every node exactly once, children strictly
        // after their parent (the builder reserves the parent slot
        // before recursing, so arena order doubles as a cycle guard).
        let mut visited = vec![false; nodes.len()];
        let mut leaf_ranges: Vec<(u32, u32)> = Vec::new();
        let mut stack = vec![root];
        if nodes[root.index()].depth != 0 {
            return Err(topo(format!(
                "root depth {} != 0",
                nodes[root.index()].depth
            )));
        }
        while let Some(id) = stack.pop() {
            let i = id.index();
            if visited[i] {
                return Err(topo(format!("node {i} is reachable more than once")));
            }
            visited[i] = true;
            let node = &nodes[i];
            match node.kind {
                NodeKind::Leaf { start, end } => {
                    if start > end || end as usize > n {
                        return Err(topo(format!(
                            "leaf {i}: point range [{start}, {end}) outside [0, {n})"
                        )));
                    }
                    if node.count != end - start {
                        return Err(topo(format!(
                            "leaf {i}: count {} != range length {}",
                            node.count,
                            end - start
                        )));
                    }
                    leaf_ranges.push((start, end));
                }
                NodeKind::Internal { left, right } => {
                    for child in [left, right] {
                        if child.index() >= nodes.len() {
                            return Err(topo(format!(
                                "node {i}: child id {} out of range",
                                child.0
                            )));
                        }
                        if child.index() <= i {
                            return Err(topo(format!(
                                "node {i}: child {} does not follow its parent in build order",
                                child.0
                            )));
                        }
                        if nodes[child.index()].depth != node.depth + 1 {
                            return Err(topo(format!(
                                "node {i}: child {} depth {} != parent depth {} + 1",
                                child.0,
                                nodes[child.index()].depth,
                                node.depth
                            )));
                        }
                    }
                    let (lc, rc) = (nodes[left.index()].count, nodes[right.index()].count);
                    if node.count != lc + rc {
                        return Err(topo(format!(
                            "node {i}: count {} != children's {lc} + {rc}",
                            node.count
                        )));
                    }
                    stack.push(left);
                    stack.push(right);
                }
            }
        }
        if let Some(orphan) = visited.iter().position(|v| !v) {
            return Err(topo(format!("node {orphan} is unreachable from the root")));
        }
        // Leaf ranges must tile [0, n) exactly: no gap, no overlap.
        leaf_ranges.sort_unstable();
        let mut cursor = 0u32;
        for (start, end) in leaf_ranges {
            if start != cursor {
                return Err(topo(format!(
                    "leaf ranges leave a gap or overlap at point {cursor} (next leaf starts at {start})"
                )));
            }
            cursor = end;
        }
        if cursor as usize != n {
            return Err(topo(format!(
                "leaf ranges cover [0, {cursor}) but the set has {n} points"
            )));
        }
        // Moment additivity: an internal node is the merge of its
        // children. Snapshots written from our builder match bitwise;
        // the tolerance leaves room for writers that re-derive moments.
        for (i, node) in nodes.iter().enumerate() {
            if let NodeKind::Internal { left, right } = node.kind {
                let l = &nodes[left.index()].stats;
                let r = &nodes[right.index()].stats;
                let wsum = l.weight + r.weight;
                let w_tol = 1e-9 * (1.0 + wsum.abs());
                if (node.stats.weight - wsum).abs() > w_tol {
                    return Err(moments(format!(
                        "node {i}: weight {} != children's sum {wsum}",
                        node.stats.weight
                    )));
                }
                let b = l.sum_norm2 + r.sum_norm2;
                if (node.stats.sum_norm2 - b).abs() > 1e-9 * (1.0 + b.abs()) {
                    return Err(moments(format!(
                        "node {i}: Σw‖p−c‖² {} != children's sum {b}",
                        node.stats.sum_norm2
                    )));
                }
            }
        }
        let cols = PointColumns::from_points(&points);
        Ok(Self {
            points,
            cols,
            nodes,
            root,
            config,
        })
    }
}

fn build_recursive(
    points: &PointSet,
    center: &[f64],
    perm: &mut [u32],
    offset: usize,
    nodes: &mut Vec<Node>,
    depth: u16,
    config: &BuildConfig,
) -> NodeId {
    let idx_usize: Vec<usize> = perm.iter().map(|&i| i as usize).collect();
    let mbr = Mbr::of_points(points, &idx_usize).expect("non-empty node");

    if perm.len() <= config.leaf_capacity || mbr_is_degenerate(&mbr) {
        let mut stats = NodeStats::zero_at(center.to_vec());
        for &i in perm.iter() {
            stats.accumulate(points.point(i as usize), points.weight(i as usize));
        }
        let id = NodeId(nodes.len() as u32);
        nodes.push(Node {
            mbr,
            stats,
            kind: NodeKind::Leaf {
                start: offset as u32,
                end: (offset + perm.len()) as u32,
            },
            depth,
            count: perm.len() as u32,
        });
        return id;
    }

    let axis = match config.split {
        SplitRule::WidestAxisMedian | SplitRule::WidestAxisMidpoint => mbr.widest_axis(),
        SplitRule::MaxVarianceAxisMedian => max_variance_axis(points, perm),
    };
    let by_axis = |a: &u32, b: &u32| {
        let ca = points.point(*a as usize)[axis];
        let cb = points.point(*b as usize)[axis];
        ca.partial_cmp(&cb).expect("non-finite coordinate")
    };
    let mid = match config.split {
        SplitRule::WidestAxisMedian | SplitRule::MaxVarianceAxisMedian => {
            let mid = perm.len() / 2;
            perm.select_nth_unstable_by(mid, by_axis);
            mid
        }
        SplitRule::WidestAxisMidpoint => {
            // Partition around the spatial midpoint of the split axis.
            let cut = 0.5 * (mbr.lo()[axis] + mbr.hi()[axis]);
            let mut lo = 0usize;
            let mut hi = perm.len();
            while lo < hi {
                if points.point(perm[lo] as usize)[axis] < cut {
                    lo += 1;
                } else {
                    hi -= 1;
                    perm.swap(lo, hi);
                }
            }
            if lo == 0 || lo == perm.len() {
                // Degenerate midpoint (mass on one side): fall back to
                // the median so splitting always makes progress.
                let mid = perm.len() / 2;
                perm.select_nth_unstable_by(mid, by_axis);
                mid
            } else {
                lo
            }
        }
    };

    let (left_perm, right_perm) = perm.split_at_mut(mid);
    // Reserve this node's slot before recursing so the root is slot 0.
    let id = NodeId(nodes.len() as u32);
    nodes.push(placeholder_node(points.dim()));

    let left = build_recursive(points, center, left_perm, offset, nodes, depth + 1, config);
    let right = build_recursive(
        points,
        center,
        right_perm,
        offset + mid,
        nodes,
        depth + 1,
        config,
    );

    let mut stats = nodes[left.index()].stats.clone();
    stats.merge(&nodes[right.index()].stats);
    let count = nodes[left.index()].count + nodes[right.index()].count;
    nodes[id.index()] = Node {
        mbr,
        stats,
        kind: NodeKind::Internal { left, right },
        depth,
        count,
    };
    id
}

/// The axis with the largest sample variance among `perm`'s points.
fn max_variance_axis(points: &PointSet, perm: &[u32]) -> usize {
    let d = points.dim();
    let mut mean = vec![0.0; d];
    for &i in perm {
        let p = points.point(i as usize);
        for j in 0..d {
            mean[j] += p[j];
        }
    }
    let inv = 1.0 / perm.len() as f64;
    for m in &mut mean {
        *m *= inv;
    }
    let mut var = vec![0.0; d];
    for &i in perm {
        let p = points.point(i as usize);
        for j in 0..d {
            let t = p[j] - mean[j];
            var[j] += t * t;
        }
    }
    let mut best = 0;
    for j in 1..d {
        if var[j] > var[best] {
            best = j;
        }
    }
    best
}

/// All points identical → splitting can never terminate; force a leaf.
fn mbr_is_degenerate(mbr: &Mbr) -> bool {
    (0..mbr.dim()).all(|i| mbr.extent(i) == 0.0)
}

fn placeholder_node(d: usize) -> Node {
    Node {
        mbr: Mbr::new(vec![0.0; d], vec![0.0; d]),
        stats: NodeStats::zero(d),
        kind: NodeKind::Leaf { start: 0, end: 0 },
        depth: 0,
        count: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_geom::vecmath::dist2;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    fn random_points(n: usize, d: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let flat: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-100.0..100.0)).collect();
        PointSet::from_rows(d, &flat)
    }

    #[test]
    fn root_is_slot_zero_and_covers_all_points() {
        let ps = random_points(500, 2, 1);
        let tree = KdTree::build_default(&ps);
        assert_eq!(tree.root(), NodeId(0));
        assert_eq!(tree.node(tree.root()).point_count(), 500);
        assert!((tree.node(tree.root()).stats.weight - 500.0).abs() < 1e-9);
    }

    #[test]
    fn columns_mirror_reordered_points_and_leaf_ranges() {
        let ps = random_points(333, 3, 7);
        let tree = KdTree::build(
            &ps,
            BuildConfig {
                leaf_capacity: 8,
                ..BuildConfig::default()
            },
        );
        let cols = tree.columns();
        assert_eq!(cols.len(), tree.points().len());
        assert_eq!(cols.dim(), tree.points().dim());
        for i in 0..tree.points().len() {
            let p = tree.points().point(i);
            for (j, &pj) in p.iter().enumerate() {
                assert_eq!(cols.col(j)[i].to_bits(), pj.to_bits());
            }
        }
        tree.for_each_node(|id, n| {
            if n.is_leaf() {
                let (start, end) = tree.leaf_range(id);
                assert!(start <= end && end <= cols.len());
                for (i, (p, _)) in (start..end).zip(tree.leaf_points(id)) {
                    for (j, &pj) in p.iter().enumerate() {
                        assert_eq!(cols.col_slice(j, start, end)[i - start], pj);
                    }
                }
            }
        });
    }

    #[test]
    fn leaves_respect_capacity_and_partition_points() {
        let ps = random_points(777, 2, 2);
        let cfg = BuildConfig {
            leaf_capacity: 16,
            ..BuildConfig::default()
        };
        let tree = KdTree::build(&ps, cfg);
        let mut covered = vec![false; 777];
        tree.for_each_node(|id, n| {
            if let NodeKind::Leaf { start, end } = n.kind {
                assert!((end - start) as usize <= 16, "oversized leaf");
                for i in start..end {
                    assert!(!covered[i as usize], "point owned by two leaves");
                    covered[i as usize] = true;
                }
                // MBR must contain every owned point.
                for (p, _) in tree.leaf_points(id) {
                    assert!(n.mbr.contains(p));
                }
            }
        });
        assert!(covered.iter().all(|&c| c), "some point not owned by a leaf");
    }

    #[test]
    fn internal_stats_equal_children_sum() {
        let ps = random_points(300, 3, 3);
        let tree = KdTree::build(
            &ps,
            BuildConfig {
                leaf_capacity: 8,
                ..BuildConfig::default()
            },
        );
        tree.for_each_node(|_, n| {
            if let NodeKind::Internal { left, right } = n.kind {
                let l = &tree.node(left).stats;
                let r = &tree.node(right).stats;
                assert!((n.stats.weight - (l.weight + r.weight)).abs() < 1e-9);
                assert!((n.stats.sum_norm4 - (l.sum_norm4 + r.sum_norm4)).abs() < 1e-3);
            }
        });
    }

    #[test]
    fn duplicate_points_build_finite_tree() {
        // 1000 identical points would split forever without the
        // degenerate-MBR guard.
        let flat = vec![5.0; 2000];
        let ps = PointSet::from_rows(2, &flat);
        let tree = KdTree::build(
            &ps,
            BuildConfig {
                leaf_capacity: 4,
                ..BuildConfig::default()
            },
        );
        assert!(tree.num_nodes() >= 1);
        assert_eq!(tree.node(tree.root()).point_count(), 1000);
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn empty_set_panics() {
        KdTree::build_default(&PointSet::new(2));
    }

    #[test]
    fn try_from_parts_round_trips_a_built_tree() {
        let ps = random_points(300, 2, 77);
        let tree = KdTree::build_default(&ps);
        let rebuilt = KdTree::try_from_parts(
            tree.points().clone(),
            tree.nodes().to_vec(),
            tree.root(),
            tree.config(),
        )
        .expect("decomposed tree must reassemble");
        assert_eq!(rebuilt.num_nodes(), tree.num_nodes());
        assert_eq!(rebuilt.root(), tree.root());
        assert_eq!(rebuilt.points().coords(), tree.points().coords());
        for i in 0..tree.num_nodes() {
            let (a, b) = (&tree.nodes()[i], &rebuilt.nodes()[i]);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.stats.weight.to_bits(), b.stats.weight.to_bits());
        }
    }

    #[test]
    fn try_from_parts_rejects_topology_and_moment_defects() {
        let ps = random_points(64, 2, 78);
        let cfg = BuildConfig {
            leaf_capacity: 8,
            ..BuildConfig::default()
        };
        let tree = KdTree::build(&ps, cfg);
        let parts = || {
            (
                tree.points().clone(),
                tree.nodes().to_vec(),
                tree.root(),
                tree.config(),
            )
        };
        let is_topo =
            |r: Result<KdTree, BuildError>| matches!(r, Err(BuildError::InvalidTopology { .. }));
        let is_moments =
            |r: Result<KdTree, BuildError>| matches!(r, Err(BuildError::InvalidMoments { .. }));

        // Empty arena.
        let (p, _, root, cfg) = parts();
        assert!(is_topo(KdTree::try_from_parts(p, Vec::new(), root, cfg)));

        // Root out of range.
        let (p, n, _, cfg) = parts();
        let bad_root = NodeId(n.len() as u32);
        assert!(is_topo(KdTree::try_from_parts(p, n, bad_root, cfg)));

        // Child pointing backwards (build-order violation / cycle).
        let (p, mut n, root, cfg) = parts();
        if let NodeKind::Internal { right, .. } = &mut n[0].kind {
            *right = NodeId(0);
        }
        assert!(is_topo(KdTree::try_from_parts(p, n, root, cfg)));

        // Leaf range escaping the point set.
        let (p, mut n, root, cfg) = parts();
        let leaf = (0..n.len())
            .find(|&i| matches!(n[i].kind, NodeKind::Leaf { .. }))
            .unwrap();
        if let NodeKind::Leaf { end, .. } = &mut n[leaf].kind {
            *end += 1;
        }
        assert!(is_topo(KdTree::try_from_parts(p, n, root, cfg)));

        // Corrupted internal weight: children no longer sum to parent.
        let (p, mut n, root, cfg) = parts();
        let internal = (0..n.len())
            .find(|&i| matches!(n[i].kind, NodeKind::Internal { .. }))
            .unwrap();
        n[internal].stats.weight += 1.0;
        assert!(is_moments(KdTree::try_from_parts(p, n, root, cfg)));

        // Non-finite moment.
        let (p, mut n, root, cfg) = parts();
        n[1].stats.sum_norm2 = f64::NAN;
        assert!(is_moments(KdTree::try_from_parts(p, n, root, cfg)));
    }

    #[test]
    fn try_build_rejects_bad_input_without_panicking() {
        assert_eq!(
            KdTree::try_build_default(&PointSet::new(2)).err(),
            Some(BuildError::EmptyPointSet)
        );
        let ps = random_points(10, 2, 40);
        assert_eq!(
            KdTree::try_build(
                &ps,
                BuildConfig {
                    leaf_capacity: 0,
                    ..BuildConfig::default()
                }
            )
            .err(),
            Some(BuildError::ZeroLeafCapacity)
        );
        let nan = PointSet::from_rows(2, &[0.0, 0.0, 1.0, f64::NAN]);
        assert_eq!(
            KdTree::try_build_default(&nan).err(),
            Some(BuildError::NonFiniteCoordinate { point: 1, axis: 1 })
        );
        let inf = PointSet::from_rows(2, &[0.0, 0.0, f64::INFINITY, 1.0]);
        assert_eq!(
            KdTree::try_build_default(&inf).err(),
            Some(BuildError::NonFiniteCoordinate { point: 1, axis: 0 })
        );
        // Non-finite weights never reach `try_build` through the public
        // API: every `PointSet` constructor rejects them at the door,
        // so the builder's own weight check is second-line defense.
        let bad_w = std::panic::catch_unwind(|| {
            PointSet::from_rows_weighted(2, &[0.0, 0.0, 1.0, 1.0], &[1.0, f64::NAN])
        });
        assert!(
            bad_w.is_err(),
            "NaN weight must be rejected at construction"
        );
    }

    #[test]
    fn try_build_tolerates_degenerate_but_finite_geometry() {
        // All-duplicate, single-point, and collinear sets are valid.
        let dup = PointSet::from_rows(2, &vec![7.0; 64]);
        let tree = KdTree::try_build(
            &dup,
            BuildConfig {
                leaf_capacity: 2,
                ..BuildConfig::default()
            },
        )
        .expect("duplicates are finite");
        assert_eq!(tree.node(tree.root()).point_count(), 32);

        let single = PointSet::from_rows(2, &[1.0, 2.0]);
        assert!(KdTree::try_build_default(&single).is_ok());

        let collinear: Vec<f64> = (0..100).flat_map(|i| [i as f64, 0.0]).collect();
        let ps = PointSet::from_rows(2, &collinear);
        for split in SplitRule::ALL {
            let tree = KdTree::try_build(
                &ps,
                BuildConfig {
                    leaf_capacity: 4,
                    split,
                },
            )
            .unwrap_or_else(|e| panic!("{split:?}: {e}"));
            // The root covers the whole set; collinearity must not
            // shed points.
            assert_eq!(tree.node(tree.root()).point_count(), 100, "{split:?}");
        }
    }

    #[test]
    fn reordered_points_are_a_permutation() {
        let ps = random_points(200, 2, 4);
        let tree = KdTree::build_default(&ps);
        let mut orig: Vec<(i64, i64)> = (0..ps.len())
            .map(|i| {
                let p = ps.point(i);
                (p[0].to_bits() as i64, p[1].to_bits() as i64)
            })
            .collect();
        let mut re: Vec<(i64, i64)> = (0..tree.points().len())
            .map(|i| {
                let p = tree.points().point(i);
                (p[0].to_bits() as i64, p[1].to_bits() as i64)
            })
            .collect();
        orig.sort_unstable();
        re.sort_unstable();
        assert_eq!(orig, re);
    }

    #[test]
    fn all_split_rules_partition_points_correctly() {
        let ps = random_points(700, 2, 8);
        for split in SplitRule::ALL {
            let tree = KdTree::build(
                &ps,
                BuildConfig {
                    leaf_capacity: 8,
                    split,
                },
            );
            assert_eq!(tree.node(tree.root()).point_count(), 700, "{split:?}");
            // Every point owned by exactly one leaf, MBRs contain them.
            let mut owned = 0usize;
            tree.for_each_node(|id, n| {
                if n.is_leaf() {
                    for (p, _) in tree.leaf_points(id) {
                        assert!(n.mbr.contains(p), "{split:?}: point escapes MBR");
                        owned += 1;
                    }
                }
            });
            assert_eq!(owned, 700, "{split:?}");
        }
    }

    #[test]
    fn midpoint_split_terminates_on_skewed_data() {
        // Exponentially skewed x: midpoint splits repeatedly cut empty
        // space; the median fallback must still terminate the build.
        let mut rng = StdRng::seed_from_u64(9);
        let flat: Vec<f64> = (0..2000)
            .flat_map(|_| {
                let x: f64 = rng.gen_range(0.0f64..1.0).powi(8) * 1000.0;
                [x, rng.gen_range(0.0..1.0)]
            })
            .collect();
        let ps = PointSet::from_rows(2, &flat);
        let tree = KdTree::build(
            &ps,
            BuildConfig {
                leaf_capacity: 4,
                split: SplitRule::WidestAxisMidpoint,
            },
        );
        assert_eq!(tree.node(tree.root()).point_count(), 2000);
    }

    #[test]
    fn max_variance_axis_prefers_spread_dimension() {
        // x spans [0, 100], y spans [0, 1]: variance rule must split x.
        let mut rng = StdRng::seed_from_u64(10);
        let flat: Vec<f64> = (0..400)
            .flat_map(|_| [rng.gen_range(0.0..100.0), rng.gen_range(0.0..1.0)])
            .collect();
        let ps = PointSet::from_rows(2, &flat);
        let perm: Vec<u32> = (0..200).collect();
        assert_eq!(max_variance_axis(&ps, &perm), 0);
    }

    #[test]
    fn depth_is_logarithmic_for_balanced_input() {
        let ps = random_points(4096, 2, 5);
        let tree = KdTree::build(
            &ps,
            BuildConfig {
                leaf_capacity: 1,
                ..BuildConfig::default()
            },
        );
        // Perfectly balanced depth is 12; allow generous slack for median
        // ties, but reject a degenerate linear tree.
        assert!(tree.depth() <= 24, "tree depth {} too large", tree.depth());
    }

    proptest! {
        /// Root stats must match brute-force sums over the original set,
        /// and every node's MBR-derived distance interval must bracket
        /// the true distances of its points.
        #[test]
        fn tree_invariants_hold(
            flat in proptest::collection::vec(-40.0..40.0f64, 8..120),
            q in proptest::collection::vec(-50.0..50.0f64, 2),
        ) {
            let n = flat.len() / 2 * 2;
            let ps = PointSet::from_rows(2, &flat[..n]);
            let tree = KdTree::build(&ps, BuildConfig { leaf_capacity: 4, ..BuildConfig::default() });
            let root = tree.node(tree.root());
            let brute: f64 = (0..ps.len()).map(|i| dist2(&q, ps.point(i))).sum();
            prop_assert!((root.stats.sum_dist2(&q) - brute).abs() <= 1e-6 * (1.0 + brute));

            tree.for_each_node(|id, node| {
                if node.is_leaf() {
                    let dmin2 = node.mbr.min_dist2(&q);
                    let dmax2 = node.mbr.max_dist2(&q);
                    for (p, _) in tree.leaf_points(id) {
                        let d2 = dist2(&q, p);
                        assert!(dmin2 <= d2 + 1e-9 && d2 <= dmax2 + 1e-9);
                    }
                }
            });
        }
    }
}

//! Structured construction errors.
//!
//! The index crate sits below `kdv-core` in the dependency graph, so it
//! cannot reuse `kdv_core::KdvError`; instead [`BuildError`] carries
//! the same level of context and `kdv-core`/`kdv-cli` convert it at
//! their boundary. Every variant names exactly what was wrong and — for
//! data defects — *which* point, so a caller can report actionable
//! messages for multi-gigabyte datasets.

use std::fmt;

/// Why a kd-tree could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The input point set contains no points.
    EmptyPointSet,
    /// `BuildConfig::leaf_capacity` was zero.
    ZeroLeafCapacity,
    /// A coordinate was NaN or infinite. Sorting comparators and MBR
    /// extents are undefined on non-finite values, so these are
    /// rejected up front rather than corrupting the tree.
    NonFiniteCoordinate {
        /// Row index of the offending point (pre-reorder).
        point: usize,
        /// Axis of the offending coordinate.
        axis: usize,
    },
    /// A point weight was NaN or infinite.
    NonFiniteWeight {
        /// Row index of the offending point (pre-reorder).
        point: usize,
    },
    /// Externally-supplied node topology (a deserialized snapshot, for
    /// example) violates the tree invariants: bad child indices, a
    /// cycle, unreachable nodes, leaf ranges that do not partition the
    /// point set, or inconsistent depths/counts.
    InvalidTopology {
        /// Human-readable description of the violated invariant.
        detail: String,
    },
    /// Externally-supplied node moments are non-finite or do not add up
    /// (an internal node's statistics must be the merge of its
    /// children's).
    InvalidMoments {
        /// Human-readable description of the violated invariant.
        detail: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::EmptyPointSet => write!(f, "cannot index an empty point set"),
            BuildError::ZeroLeafCapacity => write!(f, "leaf capacity must be positive"),
            BuildError::NonFiniteCoordinate { point, axis } => {
                write!(f, "non-finite coordinate at point {point}, axis {axis}")
            }
            BuildError::NonFiniteWeight { point } => {
                write!(f, "non-finite weight at point {point}")
            }
            BuildError::InvalidTopology { detail } => {
                write!(f, "invalid tree topology: {detail}")
            }
            BuildError::InvalidMoments { detail } => {
                write!(f, "invalid node moments: {detail}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_defect() {
        assert_eq!(
            BuildError::EmptyPointSet.to_string(),
            "cannot index an empty point set"
        );
        assert_eq!(
            BuildError::NonFiniteCoordinate { point: 7, axis: 1 }.to_string(),
            "non-finite coordinate at point 7, axis 1"
        );
        assert_eq!(
            BuildError::NonFiniteWeight { point: 3 }.to_string(),
            "non-finite weight at point 3"
        );
    }
}

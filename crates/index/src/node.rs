//! Flat-arena tree nodes.

use crate::stats::NodeStats;
use kdv_geom::Mbr;

/// Index of a node inside [`crate::KdTree`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena slot this id refers to.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Children of an internal node, or the point range of a leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Internal node with two children.
    Internal {
        /// Left child (points below the split plane).
        left: NodeId,
        /// Right child (points at or above the split plane).
        right: NodeId,
    },
    /// Leaf owning the contiguous point range `[start, end)` of the
    /// tree's reordered point set.
    Leaf {
        /// First owned point index.
        start: u32,
        /// One past the last owned point index.
        end: u32,
    },
}

/// One kd-tree node: bounding rectangle, aggregated moments, topology.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Minimum bounding rectangle of all points under the node.
    pub mbr: Mbr,
    /// Weighted moment statistics of all points under the node.
    pub stats: NodeStats,
    /// Children or leaf point range.
    pub kind: NodeKind,
    /// Depth of the node (root = 0); used for diagnostics and benches.
    pub depth: u16,
    /// Number of points (count, not weight) under the node.
    pub count: u32,
}

impl Node {
    /// Whether this node is a leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf { .. })
    }

    /// Number of points under the node (count, not weight).
    #[inline]
    pub fn point_count(&self) -> usize {
        self.count as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf_node() -> Node {
        Node {
            mbr: Mbr::new(vec![0.0], vec![1.0]),
            stats: NodeStats::zero(1),
            kind: NodeKind::Leaf { start: 3, end: 7 },
            depth: 2,
            count: 4,
        }
    }

    #[test]
    fn leaf_accessors() {
        let n = leaf_node();
        assert!(n.is_leaf());
        assert_eq!(n.point_count(), 4);
        assert_eq!(n.depth, 2);
    }

    #[test]
    fn internal_kind_is_not_leaf() {
        let mut n = leaf_node();
        n.kind = NodeKind::Internal {
            left: NodeId(1),
            right: NodeId(2),
        };
        assert!(!n.is_leaf());
    }

    #[test]
    fn node_id_index_roundtrip() {
        assert_eq!(NodeId(42).index(), 42);
        assert_eq!(NodeId(0), NodeId(0));
        assert_ne!(NodeId(0), NodeId(1));
    }
}

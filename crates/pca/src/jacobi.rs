//! Cyclic Jacobi eigensolver for symmetric matrices.
//!
//! Rotates away the largest off-diagonal elements until the matrix is
//! (numerically) diagonal. For the small dimensions KDV uses (d ≤ 10)
//! this converges in a handful of sweeps and is simpler and more robust
//! than QR with shifts.

use crate::covariance::SymMatrix;

/// Maximum number of full sweeps before giving up (a 10×10 symmetric
/// matrix typically converges in < 10).
const MAX_SWEEPS: usize = 64;

/// Convergence threshold on the off-diagonal norm, relative to the
/// matrix scale.
const TOL: f64 = 1e-12;

/// An eigendecomposition `A = V·diag(λ)·Vᵀ`.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, sorted descending.
    pub values: Vec<f64>,
    /// Eigenvectors as rows (row `k` pairs with `values[k]`), row-major
    /// `d × d`.
    pub vectors: Vec<f64>,
}

impl EigenDecomposition {
    /// The `k`-th eigenvector.
    pub fn vector(&self, k: usize) -> &[f64] {
        let d = self.values.len();
        &self.vectors[k * d..(k + 1) * d]
    }
}

/// Diagonalizes a symmetric matrix; eigenpairs are returned sorted by
/// descending eigenvalue.
pub fn eigen_symmetric(m: &SymMatrix) -> EigenDecomposition {
    let d = m.dim();
    let mut a: Vec<f64> = m.data().to_vec();
    // v starts as identity; accumulates rotations (columns = eigenvectors).
    let mut v = vec![0.0; d * d];
    for i in 0..d {
        v[i * d + i] = 1.0;
    }

    let scale: f64 = a.iter().map(|x| x.abs()).fold(0.0, f64::max).max(1e-300);
    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0;
        for p in 0..d {
            for q in (p + 1)..d {
                off += a[p * d + q].abs();
            }
        }
        if off <= TOL * scale {
            break;
        }
        for p in 0..d {
            for q in (p + 1)..d {
                let apq = a[p * d + q];
                if apq.abs() <= TOL * scale * 1e-3 {
                    continue;
                }
                let app = a[p * d + p];
                let aqq = a[q * d + q];
                // Classic Jacobi rotation angle.
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                for k in 0..d {
                    let akp = a[k * d + p];
                    let akq = a[k * d + q];
                    a[k * d + p] = c * akp - s * akq;
                    a[k * d + q] = s * akp + c * akq;
                }
                for k in 0..d {
                    let apk = a[p * d + k];
                    let aqk = a[q * d + k];
                    a[p * d + k] = c * apk - s * aqk;
                    a[q * d + k] = s * apk + c * aqk;
                }
                for k in 0..d {
                    let vkp = v[k * d + p];
                    let vkq = v[k * d + q];
                    v[k * d + p] = c * vkp - s * vkq;
                    v[k * d + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract (eigenvalue, eigenvector-column) pairs and sort descending.
    let mut pairs: Vec<(f64, Vec<f64>)> = (0..d)
        .map(|j| {
            let val = a[j * d + j];
            let vec: Vec<f64> = (0..d).map(|i| v[i * d + j]).collect();
            (val, vec)
        })
        .collect();
    pairs.sort_by(|x, y| y.0.total_cmp(&x.0));

    let values = pairs.iter().map(|(val, _)| *val).collect();
    let mut vectors = Vec::with_capacity(d * d);
    for (_, vec) in &pairs {
        vectors.extend_from_slice(vec);
    }
    EigenDecomposition { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sym(dim: usize, data: Vec<f64>) -> SymMatrix {
        SymMatrix::from_rows(dim, data)
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let m = sym(3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let e = eigen_symmetric(&m);
        assert_eq!(e.values.len(), 3);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 2.0).abs() < 1e-10);
        assert!((e.values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2_eigenpairs() {
        // [[2, 1], [1, 2]] → λ = 3 (vec (1,1)/√2) and 1 (vec (1,−1)/√2).
        let m = sym(2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = eigen_symmetric(&m);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        let v0 = e.vector(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
        assert!((v0[0] - v0[1]).abs() < 1e-9, "λ=3 eigenvector is (1,1)/√2");
    }

    fn reconstruct(e: &EigenDecomposition) -> Vec<f64> {
        let d = e.values.len();
        let mut m = vec![0.0; d * d];
        for k in 0..d {
            let vk = e.vector(k);
            for i in 0..d {
                for j in 0..d {
                    m[i * d + j] += e.values[k] * vk[i] * vk[j];
                }
            }
        }
        m
    }

    proptest! {
        /// A = V diag(λ) Vᵀ reconstructs, and V is orthonormal.
        #[test]
        fn decomposition_reconstructs(entries in proptest::collection::vec(-5.0..5.0f64, 10)) {
            // Build a symmetric 4×4 from 10 free entries.
            let d = 4;
            let mut data = vec![0.0; d * d];
            let mut it = entries.into_iter();
            for i in 0..d {
                for j in i..d {
                    let v = it.next().expect("10 entries fill the upper triangle");
                    data[i * d + j] = v;
                    data[j * d + i] = v;
                }
            }
            let m = sym(d, data.clone());
            let e = eigen_symmetric(&m);
            let r = reconstruct(&e);
            for (a, b) in data.iter().zip(&r) {
                prop_assert!((a - b).abs() < 1e-8, "reconstruction off: {a} vs {b}");
            }
            // Orthonormality of eigenvectors.
            for i in 0..d {
                for j in 0..d {
                    let dot: f64 = e.vector(i).iter().zip(e.vector(j)).map(|(x, y)| x * y).sum();
                    let expect = if i == j { 1.0 } else { 0.0 };
                    prop_assert!((dot - expect).abs() < 1e-8);
                }
            }
            // Sorted descending.
            for w in e.values.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-12);
            }
        }
    }
}

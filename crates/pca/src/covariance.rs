//! Sample covariance matrices.

use kdv_geom::PointSet;

/// A symmetric `d × d` matrix in row-major flat storage.
#[derive(Debug, Clone, PartialEq)]
pub struct SymMatrix {
    dim: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// Creates a zero matrix.
    pub fn zeros(dim: usize) -> Self {
        assert!(dim > 0, "matrix dimension must be positive");
        Self {
            dim,
            data: vec![0.0; dim * dim],
        }
    }

    /// Wraps row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != dim²` or the data is not symmetric to
    /// within `1e-9`.
    pub fn from_rows(dim: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), dim * dim, "shape mismatch");
        for i in 0..dim {
            for j in 0..i {
                assert!(
                    (data[i * dim + j] - data[j * dim + i]).abs() <= 1e-9,
                    "matrix not symmetric at ({i}, {j})"
                );
            }
        }
        Self { dim, data }
    }

    /// Matrix dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.dim + j]
    }

    /// Sets element `(i, j)` **and** its mirror `(j, i)`.
    #[inline]
    pub fn set_sym(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.dim + j] = v;
        self.data[j * self.dim + i] = v;
    }

    /// Row-major backing slice.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Sum of absolute values of off-diagonal elements (the Jacobi
    /// convergence measure).
    pub fn off_diagonal_norm(&self) -> f64 {
        let mut acc = 0.0;
        for i in 0..self.dim {
            for j in 0..self.dim {
                if i != j {
                    acc += self.get(i, j).abs();
                }
            }
        }
        acc
    }
}

/// The mean-centered sample covariance matrix of a point set
/// (denominator `n − 1`; weights are ignored — PCA here reduces raw
/// coordinates, matching the paper's preprocessing).
///
/// # Panics
/// Panics if the set has fewer than 2 points.
pub fn covariance(points: &PointSet) -> SymMatrix {
    assert!(points.len() >= 2, "covariance needs at least two points");
    let d = points.dim();
    let mean = points.mean().expect("non-empty");
    let mut m = SymMatrix::zeros(d);
    for idx in 0..points.len() {
        let p = points.point(idx);
        for i in 0..d {
            let di = p[i] - mean[i];
            for j in i..d {
                let dj = p[j] - mean[j];
                m.data[i * d + j] += di * dj;
            }
        }
    }
    let denom = (points.len() - 1) as f64;
    for i in 0..d {
        for j in i..d {
            let v = m.data[i * d + j] / denom;
            m.set_sym(i, j, v);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covariance_of_axis_aligned_data() {
        // x ∈ {0, 2}, y constant → var(x) = 2, var(y) = 0, cov = 0.
        let ps = PointSet::from_rows(2, &[0.0, 5.0, 2.0, 5.0]);
        let c = covariance(&ps);
        assert!((c.get(0, 0) - 2.0).abs() < 1e-12);
        assert_eq!(c.get(1, 1), 0.0);
        assert_eq!(c.get(0, 1), 0.0);
    }

    #[test]
    fn covariance_captures_correlation() {
        // Perfectly correlated x = y.
        let ps = PointSet::from_rows(2, &[0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
        let c = covariance(&ps);
        assert!((c.get(0, 1) - c.get(0, 0)).abs() < 1e-12);
        assert!((c.get(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetry_is_enforced() {
        let ps = PointSet::from_rows(3, &[1.0, 2.0, 3.0, -1.0, 0.5, 2.0, 4.0, 4.0, 4.0]);
        let c = covariance(&ps);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(c.get(i, j), c.get(j, i));
            }
        }
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn asymmetric_input_rejected() {
        SymMatrix::from_rows(2, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn single_point_panics() {
        covariance(&PointSet::from_rows(2, &[0.0, 0.0]));
    }
}

//! The PCA fit/transform used by the Fig 24 dimensionality sweep.

use crate::covariance::covariance;
use crate::jacobi::eigen_symmetric;
use kdv_geom::PointSet;

/// A fitted PCA transform.
///
/// # Examples
/// ```
/// use kdv_geom::PointSet;
/// use kdv_pca::Pca;
///
/// // Points on the line y = x: one dominant component.
/// let ps = PointSet::from_rows(2, &[0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
/// let pca = Pca::fit(&ps);
/// assert!(pca.explained_variance()[0] > 100.0 * pca.explained_variance()[1].abs());
/// let reduced = pca.transform(&ps, 1);
/// assert_eq!(reduced.dim(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// Principal axes as rows, sorted by descending explained variance.
    components: Vec<f64>,
    /// Explained variance (eigenvalues), descending.
    variances: Vec<f64>,
    dim: usize,
}

impl Pca {
    /// Fits PCA on a point set.
    ///
    /// # Panics
    /// Panics if the set has fewer than two points.
    pub fn fit(points: &PointSet) -> Self {
        let cov = covariance(points);
        let eig = eigen_symmetric(&cov);
        Self {
            mean: points.mean().expect("non-empty"),
            components: eig.vectors,
            variances: eig.values,
            dim: points.dim(),
        }
    }

    /// Input dimensionality.
    #[inline]
    pub fn input_dim(&self) -> usize {
        self.dim
    }

    /// Explained variance per component (descending).
    pub fn explained_variance(&self) -> &[f64] {
        &self.variances
    }

    /// Projects every point onto the top `k` principal components,
    /// preserving weights.
    ///
    /// # Panics
    /// Panics if `k == 0`, `k > input_dim()`, or the set's
    /// dimensionality differs from the fitted one.
    pub fn transform(&self, points: &PointSet, k: usize) -> PointSet {
        assert!(k > 0 && k <= self.dim, "invalid target dimensionality");
        assert_eq!(points.dim(), self.dim, "dimensionality mismatch");
        let mut out = PointSet::with_capacity(k, points.len());
        let mut proj = vec![0.0; k];
        for i in 0..points.len() {
            let p = points.point(i);
            for (c, slot) in proj.iter_mut().enumerate() {
                let axis = &self.components[c * self.dim..(c + 1) * self.dim];
                let mut acc = 0.0;
                for j in 0..self.dim {
                    acc += (p[j] - self.mean[j]) * axis[j];
                }
                *slot = acc;
            }
            out.push_weighted(&proj, points.weight(i));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_geom::vecmath::dist2;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    fn random_points(n: usize, d: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let flat: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-3.0..3.0)).collect();
        PointSet::from_rows(d, &flat)
    }

    #[test]
    fn full_rank_projection_preserves_pairwise_distances() {
        let ps = random_points(50, 4, 1);
        let pca = Pca::fit(&ps);
        let t = pca.transform(&ps, 4);
        for i in 0..10 {
            for j in 0..10 {
                let d0 = dist2(ps.point(i), ps.point(j));
                let d1 = dist2(t.point(i), t.point(j));
                assert!(
                    (d0 - d1).abs() < 1e-8 * (1.0 + d0),
                    "orthogonal transform must preserve distances"
                );
            }
        }
    }

    #[test]
    fn first_component_captures_dominant_axis() {
        // Points along y = 2x, tiny noise: PC1 ∝ (1, 2)/√5.
        let mut rng = StdRng::seed_from_u64(2);
        let mut flat = Vec::new();
        for _ in 0..500 {
            let t: f64 = rng.gen_range(-5.0..5.0);
            flat.push(t + rng.gen_range(-0.01..0.01));
            flat.push(2.0 * t + rng.gen_range(-0.01..0.01));
        }
        let ps = PointSet::from_rows(2, &flat);
        let pca = Pca::fit(&ps);
        let v = &pca.components[0..2];
        let ratio = (v[1] / v[0]).abs();
        assert!((ratio - 2.0).abs() < 0.05, "PC1 slope {ratio} ≠ 2");
        assert!(pca.explained_variance()[0] > 100.0 * pca.explained_variance()[1]);
    }

    #[test]
    fn projected_variance_matches_eigenvalues() {
        let ps = random_points(400, 3, 3);
        let pca = Pca::fit(&ps);
        let t = pca.transform(&ps, 2);
        let var = t.std_dev().expect("non-empty");
        for (c, &s) in var.iter().enumerate() {
            let expect = pca.explained_variance()[c].sqrt();
            assert!(
                (s - expect).abs() < 1e-6 * (1.0 + expect),
                "component {c} std {s} ≠ √λ {expect}"
            );
        }
    }

    #[test]
    fn weights_survive_projection() {
        let ps = PointSet::from_rows_weighted(2, &[0.0, 0.0, 1.0, 1.0, 2.0, 0.0], &[1.0, 2.0, 3.0]);
        let pca = Pca::fit(&ps);
        let t = pca.transform(&ps, 1);
        assert_eq!(t.weights(), ps.weights());
    }

    #[test]
    #[should_panic(expected = "invalid target dimensionality")]
    fn oversized_k_panics() {
        let ps = random_points(10, 2, 4);
        Pca::fit(&ps).transform(&ps, 3);
    }
}

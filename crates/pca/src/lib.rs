//! Principal component analysis for the QUAD paper's dimensionality
//! sweep (Fig 24).
//!
//! The paper varies KDE dimensionality from 2 to 10 "via PCA
//! dimensionality reduction" of higher-dimensional datasets (§7.7).
//! This crate provides that substrate from scratch:
//!
//! * [`covariance`] — mean-centered sample covariance matrices,
//! * [`jacobi`] — a cyclic Jacobi eigensolver for small symmetric
//!   matrices (d ≤ a few dozen, far beyond KDV's needs),
//! * [`project`] — the [`project::Pca`] transform fitting on a
//!   [`kdv_geom::PointSet`] and projecting onto the top-variance
//!   components.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod covariance;
pub mod jacobi;
pub mod project;

pub use project::Pca;

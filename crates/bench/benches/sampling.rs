//! Z-order sampling costs: Morton sorting (the preprocessing the
//! Z-Order baseline pays once) and coreset extraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kdv_data::Dataset;
use kdv_sampling::{sample_size_for, sort_indices_by_morton, zorder_sample};
use std::hint::black_box;

fn bench_morton_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("morton_sort");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let ps = Dataset::Crime.generate(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(sort_indices_by_morton(black_box(&ps))))
        });
    }
    group.finish();
}

fn bench_coreset(c: &mut Criterion) {
    let ps = Dataset::Crime.generate(100_000, 3);
    let mut group = c.benchmark_group("zorder_sample_100k");
    group.sample_size(10);
    for eps in [0.05f64, 0.02, 0.01] {
        let size = sample_size_for(eps, 0.2);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("eps{eps}_s{size}")),
            &size,
            |b, &size| b.iter(|| black_box(zorder_sample(black_box(&ps), size, 0.5))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_morton_sort, bench_coreset);
criterion_main!(benches);

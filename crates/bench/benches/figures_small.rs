//! Criterion versions of the headline figure cells at reduced scale —
//! statistically sound timings of whole-raster renders, complementing
//! the single-shot `figures` harness.

use criterion::{criterion_group, criterion_main, Criterion};
use kdv_bench::workload::{time_eps_render, time_tau_render, Workload};
use kdv_core::kernel::KernelType;
use kdv_core::method::MethodKind;
use kdv_core::threshold::estimate_levels;
use kdv_data::Dataset;
use std::hint::black_box;
use std::time::Duration;

const BUDGET: Duration = Duration::from_secs(60);

/// Fig 14 cell: crime, ε = 0.01, 64×48 raster, 20 k points.
fn bench_fig14_cell(c: &mut Criterion) {
    let w = Workload::build_with_n(Dataset::Crime, KernelType::Gaussian, 20_000, (64, 48), 9);
    let mut group = c.benchmark_group("fig14_crime20k_64x48_eps001");
    group.sample_size(10);
    for m in [MethodKind::Akde, MethodKind::Karl, MethodKind::Quad] {
        group.bench_function(m.name(), |b| {
            b.iter(|| {
                let mut ev = w.evaluator_eps(m, 0.01).expect("εKDV method");
                black_box(time_eps_render(&mut *ev, &w.raster, 0.01, BUDGET))
            })
        });
    }
    group.finish();
}

/// Fig 15 cell: crime, τ = µ, same raster.
fn bench_fig15_cell(c: &mut Criterion) {
    let w = Workload::build_with_n(Dataset::Crime, KernelType::Gaussian, 20_000, (64, 48), 9);
    let levels = estimate_levels(&w.tree, w.kernel, &w.raster, 16, 12);
    let mut group = c.benchmark_group("fig15_crime20k_64x48_tau_mu");
    group.sample_size(10);
    for m in [MethodKind::Tkdc, MethodKind::Karl, MethodKind::Quad] {
        group.bench_function(m.name(), |b| {
            b.iter(|| {
                let mut ev = w.evaluator_tau(m).expect("τKDV method");
                black_box(time_tau_render(&mut *ev, &w.raster, levels.mu, BUDGET))
            })
        });
    }
    group.finish();
}

/// Fig 22 cell: triangular kernel, hep.
fn bench_fig22_cell(c: &mut Criterion) {
    let w = Workload::build_with_n(Dataset::Hep, KernelType::Triangular, 20_000, (64, 48), 9);
    let mut group = c.benchmark_group("fig22_hep20k_triangular_eps001");
    group.sample_size(10);
    for m in [MethodKind::Akde, MethodKind::Quad] {
        group.bench_function(m.name(), |b| {
            b.iter(|| {
                let mut ev = w.evaluator_eps(m, 0.01).expect("εKDV method");
                black_box(time_eps_render(&mut *ev, &w.raster, 0.01, BUDGET))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig14_cell,
    bench_fig15_cell,
    bench_fig22_cell
);
criterion_main!(benches);

//! PCA substrate costs: covariance + Jacobi fit and projection, at the
//! dimensionalities the Fig 24 sweep uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kdv_data::Dataset;
use kdv_pca::Pca;
use std::hint::black_box;

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("pca_fit_10d");
    group.sample_size(10);
    for n in [10_000usize, 50_000] {
        let ps = Dataset::Hep.generate_highdim(n, 10, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(Pca::fit(black_box(&ps))))
        });
    }
    group.finish();
}

fn bench_transform(c: &mut Criterion) {
    let ps = Dataset::Hep.generate_highdim(50_000, 10, 5);
    let pca = Pca::fit(&ps);
    let mut group = c.benchmark_group("pca_transform_50k");
    group.sample_size(10);
    for k in [2usize, 6, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(pca.transform(black_box(&ps), k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fit, bench_transform);
criterion_main!(benches);

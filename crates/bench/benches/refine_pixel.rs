//! Per-pixel εKDV / τKDV query cost across the paper's methods — the
//! microscopic version of Figs 14–15.

use criterion::{criterion_group, criterion_main, Criterion};
use kdv_bench::workload::Workload;
use kdv_core::kernel::KernelType;
use kdv_core::method::MethodKind;
use kdv_core::threshold::estimate_levels;
use kdv_data::Dataset;
use std::hint::black_box;

fn bench_eps_pixel(c: &mut Criterion) {
    let w = Workload::build_with_n(Dataset::Crime, KernelType::Gaussian, 20_000, (64, 48), 1);
    let q = w.raster.pixel_center(32, 24);
    let mut group = c.benchmark_group("eps_pixel_crime20k");
    for m in [
        MethodKind::Exact,
        MethodKind::Scikit,
        MethodKind::Akde,
        MethodKind::Karl,
        MethodKind::Quad,
    ] {
        let mut ev = w.evaluator_eps(m, 0.01).expect("εKDV method");
        group.bench_function(m.name(), |b| {
            b.iter(|| black_box(ev.eval_eps(black_box(&q), 0.01)))
        });
    }
    group.finish();
}

fn bench_tau_pixel(c: &mut Criterion) {
    let w = Workload::build_with_n(Dataset::Crime, KernelType::Gaussian, 20_000, (64, 48), 1);
    let levels = estimate_levels(&w.tree, w.kernel, &w.raster, 16, 12);
    let tau = levels.tau(0.0);
    let q = w.raster.pixel_center(32, 24);
    let mut group = c.benchmark_group("tau_pixel_crime20k");
    for m in [MethodKind::Tkdc, MethodKind::Karl, MethodKind::Quad] {
        let mut ev = w.evaluator_tau(m).expect("τKDV method");
        group.bench_function(m.name(), |b| {
            b.iter(|| black_box(ev.eval_tau(black_box(&q), tau)))
        });
    }
    group.finish();
}

fn bench_kernels_quad(c: &mut Criterion) {
    let mut group = c.benchmark_group("eps_pixel_quad_by_kernel");
    for ty in KernelType::ALL {
        let w = Workload::build_with_n(Dataset::Crime, ty, 20_000, (64, 48), 1);
        let q = w.raster.pixel_center(20, 30);
        let mut ev = w.evaluator_eps(MethodKind::Quad, 0.01).expect("QUAD");
        group.bench_function(ty.name(), |b| {
            b.iter(|| black_box(ev.eval_eps(black_box(&q), 0.01)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_eps_pixel,
    bench_tau_pixel,
    bench_kernels_quad
);
criterion_main!(benches);

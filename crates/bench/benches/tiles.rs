//! Tiled vs per-pixel τKDV (the tile-pruning extension, DESIGN.md).

use criterion::{criterion_group, criterion_main, Criterion};
use kdv_bench::workload::Workload;
use kdv_core::bounds::BoundFamily;
use kdv_core::engine::RefineEvaluator;
use kdv_core::kernel::KernelType;
use kdv_core::threshold::estimate_levels;
use kdv_data::Dataset;
use kdv_viz::render::render_tau;
use kdv_viz::tiles::render_tau_tiled;
use std::hint::black_box;

fn bench_tiled_tau(c: &mut Criterion) {
    let w = Workload::build_with_n(Dataset::Crime, KernelType::Gaussian, 50_000, (320, 240), 9);
    let levels = estimate_levels(&w.tree, w.kernel, &w.raster, 16, 12);
    let tau = levels.tau(0.1);
    let mut group = c.benchmark_group("tau_crime50k_320x240");
    group.sample_size(10);
    group.bench_function("per_pixel_quad", |b| {
        b.iter(|| {
            let mut ev = RefineEvaluator::new(&w.tree, w.kernel, BoundFamily::Quadratic);
            black_box(render_tau(&mut ev, &w.raster, tau))
        })
    });
    group.bench_function("tiled_quad_fallback", |b| {
        b.iter(|| {
            black_box(render_tau_tiled(
                &w.tree,
                w.kernel,
                BoundFamily::Quadratic,
                &w.raster,
                tau,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tiled_tau);
criterion_main!(benches);

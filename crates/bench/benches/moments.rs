//! Cost of the moment contractions behind the `O(d)`/`O(d²)` claims:
//! `Σ w·dist²` (Lemma 1's identity) and `Σ w·dist⁴` (Lemma 3), versus a
//! brute-force point scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kdv_geom::vecmath::dist2;
use kdv_geom::PointSet;
use kdv_index::NodeStats;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};
use std::hint::black_box;

fn setup(d: usize, n: usize) -> (PointSet, NodeStats, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(7);
    let flat: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let ps = PointSet::from_rows(d, &flat);
    let mut stats = NodeStats::zero(d);
    for p in ps.iter() {
        stats.accumulate(p.coords, p.weight);
    }
    let q: Vec<f64> = (0..d).map(|_| rng.gen_range(-2.0..2.0)).collect();
    (ps, stats, q)
}

fn bench_sum_dist2(c: &mut Criterion) {
    let mut group = c.benchmark_group("sum_dist2");
    for d in [2usize, 4, 8] {
        let (ps, stats, q) = setup(d, 4096);
        group.bench_with_input(BenchmarkId::new("moment_identity", d), &d, |b, _| {
            b.iter(|| black_box(stats.sum_dist2(black_box(&q))))
        });
        group.bench_with_input(BenchmarkId::new("brute_force_4096pts", d), &d, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..ps.len() {
                    acc += dist2(&q, ps.point(i));
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_sum_dist4(c: &mut Criterion) {
    let mut group = c.benchmark_group("sum_dist4");
    for d in [2usize, 4, 8] {
        let (_, stats, q) = setup(d, 4096);
        group.bench_with_input(BenchmarkId::new("moment_identity", d), &d, |b, _| {
            b.iter(|| black_box(stats.sum_dist4(black_box(&q))))
        });
    }
    group.finish();
}

fn bench_accumulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats_accumulate");
    for d in [2usize, 8] {
        let (ps, _, _) = setup(d, 1024);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| {
                let mut s = NodeStats::zero(d);
                for p in ps.iter() {
                    s.accumulate(black_box(p.coords), p.weight);
                }
                black_box(s)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sum_dist2, bench_sum_dist4, bench_accumulate);
criterion_main!(benches);

//! Cost of the progressive framework itself (§6): computing the
//! quad-tree schedule and applying block fills. Both must be negligible
//! next to density evaluation for the framework's real-time claim to
//! hold.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kdv_viz::progressive::progressive_order;
use kdv_viz::render::ProgressiveCanvas;
use std::hint::black_box;

fn bench_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("progressive_order");
    group.sample_size(20);
    for (w, h) in [(320u32, 240u32), (1280, 960)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{w}x{h}")),
            &(w, h),
            |b, &(w, h)| b.iter(|| black_box(progressive_order(w, h))),
        );
    }
    group.finish();
}

fn bench_canvas_apply(c: &mut Criterion) {
    let (w, h) = (320u32, 240u32);
    let steps = progressive_order(w, h);
    c.bench_function("progressive_canvas_full_replay_320x240", |b| {
        b.iter(|| {
            let mut canvas = ProgressiveCanvas::new(w, h);
            for (i, s) in steps.iter().enumerate() {
                canvas.apply(s, i as f64);
            }
            black_box(canvas.into_grid())
        })
    });
}

criterion_group!(benches, bench_order, bench_canvas_apply);
criterion_main!(benches);

//! Per-node bound-evaluation cost: interval vs linear (KARL) vs
//! quadratic (QUAD), across dimensionality 2–10.
//!
//! This isolates the paper's complexity claims: interval/linear are
//! `O(d)`, QUAD Gaussian is `O(d²)` (Lemma 3) and QUAD distance-kernel
//! is `O(d)` (Lemma 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kdv_core::bounds::{node_bounds, BoundFamily};
use kdv_core::kernel::{Kernel, KernelType};
use kdv_geom::{Mbr, PointSet};
use kdv_index::NodeStats;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};
use std::hint::black_box;

fn node_of_dim(d: usize) -> (NodeStats, Mbr, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(d as u64);
    let flat: Vec<f64> = (0..1000 * d).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let ps = PointSet::from_rows(d, &flat);
    let mut stats = NodeStats::zero(d);
    for p in ps.iter() {
        stats.accumulate(p.coords, p.weight);
    }
    let mbr = Mbr::of_set(&ps).expect("non-empty");
    let q: Vec<f64> = (0..d).map(|_| rng.gen_range(-3.0..3.0)).collect();
    (stats, mbr, q)
}

fn bench_gaussian_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("bound_eval_gaussian");
    for d in [2usize, 4, 6, 8, 10] {
        let (stats, mbr, q) = node_of_dim(d);
        let kernel = Kernel::gaussian(0.5);
        for family in BoundFamily::ALL {
            group.bench_with_input(BenchmarkId::new(format!("{family:?}"), d), &d, |b, _| {
                b.iter(|| {
                    black_box(node_bounds(
                        &kernel,
                        family,
                        black_box(&stats),
                        black_box(&mbr),
                        black_box(&q),
                    ))
                })
            });
        }
    }
    group.finish();
}

fn bench_distance_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("bound_eval_distance_quadratic");
    let (stats, mbr, q) = node_of_dim(2);
    for ty in [
        KernelType::Triangular,
        KernelType::Cosine,
        KernelType::Exponential,
        KernelType::Epanechnikov,
        KernelType::Quartic,
    ] {
        let kernel = Kernel::new(ty, 0.5);
        group.bench_function(ty.name(), |b| {
            b.iter(|| {
                black_box(node_bounds(
                    &kernel,
                    BoundFamily::Quadratic,
                    black_box(&stats),
                    black_box(&mbr),
                    black_box(&q),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gaussian_families, bench_distance_kernels);
criterion_main!(benches);

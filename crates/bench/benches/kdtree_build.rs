//! kd-tree construction cost and the leaf-capacity ablation called out
//! in DESIGN.md §5.4 (smaller leaves = more bound evaluations, larger
//! leaves = more exact scanning).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kdv_core::bounds::BoundFamily;
use kdv_core::engine::RefineEvaluator;
use kdv_core::kernel::Kernel;
use kdv_data::Dataset;
use kdv_index::{BuildConfig, KdTree};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let ps = Dataset::Crime.generate(50_000, 1);
    let mut group = c.benchmark_group("kdtree_build_50k");
    group.sample_size(10);
    for leaf in [8usize, 32, 128, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(leaf), &leaf, |b, &leaf| {
            b.iter(|| {
                black_box(KdTree::build(
                    black_box(&ps),
                    BuildConfig {
                        leaf_capacity: leaf,
                        ..BuildConfig::default()
                    },
                ))
            })
        });
    }
    group.finish();
}

fn bench_query_vs_leaf_capacity(c: &mut Criterion) {
    // The ablation proper: per-pixel QUAD query time as leaf size varies.
    let ps = Dataset::Crime.generate(50_000, 1);
    let kernel = Kernel::gaussian(kdv_core::bandwidth::scott_gamma(&ps).gamma);
    let mut group = c.benchmark_group("quad_query_by_leaf_capacity");
    for leaf in [8usize, 32, 128, 256] {
        let tree = KdTree::build(
            &ps,
            BuildConfig {
                leaf_capacity: leaf,
                ..BuildConfig::default()
            },
        );
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let q = [
            (kdv_geom::Mbr::of_set(&ps).expect("non-empty").lo()[0]
                + kdv_geom::Mbr::of_set(&ps).expect("non-empty").hi()[0])
                / 2.0,
            33.75,
        ];
        group.bench_with_input(BenchmarkId::from_parameter(leaf), &leaf, |b, _| {
            b.iter(|| black_box(ev.eval_eps(black_box(&q), 0.01)))
        });
    }
    group.finish();
}

fn bench_query_vs_split_rule(c: &mut Criterion) {
    // Split-rule ablation (DESIGN.md §5): midpoint splits give cube-ish
    // MBRs (tighter intervals), medians give balance.
    use kdv_index::SplitRule;
    let ps = Dataset::Crime.generate(50_000, 1);
    let kernel = Kernel::gaussian(kdv_core::bandwidth::scott_gamma(&ps).gamma);
    let mbr = kdv_geom::Mbr::of_set(&ps).expect("non-empty");
    let q = [
        (mbr.lo()[0] + mbr.hi()[0]) / 2.0,
        (mbr.lo()[1] + mbr.hi()[1]) / 2.0,
    ];
    let mut group = c.benchmark_group("quad_query_by_split_rule");
    for split in SplitRule::ALL {
        let tree = KdTree::build(
            &ps,
            BuildConfig {
                leaf_capacity: 32,
                split,
            },
        );
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        group.bench_function(format!("{split:?}"), |b| {
            b.iter(|| black_box(ev.eval_eps(black_box(&q), 0.01)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_query_vs_leaf_capacity,
    bench_query_vs_split_rule
);
criterion_main!(benches);

//! Fig 27 (appendix §9.7): the **exponential** kernel — εKDV (a, b) and
//! τKDV (c, d) response times on crime and hep.
//!
//! Paper expectation: same story as Figs 22–23 — QUAD at least an order
//! of magnitude ahead; tKDC times out entirely on hep (panel d).

use crate::figures::FigureCtx;
use crate::report::Table;
use crate::workload::{fmt_cell, time_eps_render, time_tau_render, Workload};
use kdv_core::kernel::KernelType;
use kdv_core::method::MethodKind;
use kdv_core::threshold::estimate_levels;
use kdv_data::Dataset;

/// ε sweep (panels a–b).
pub const EPS_SWEEP: [f64; 5] = [0.01, 0.02, 0.03, 0.04, 0.05];

/// τ sweep factors (panels c–d).
pub const K_SWEEP: [f64; 5] = [-0.2, -0.1, 0.0, 0.1, 0.2];

/// Runs all four panels.
pub fn run(ctx: &FigureCtx) -> Vec<Table> {
    let mut tables = Vec::new();
    for ds in [Dataset::Crime, Dataset::Hep] {
        let w = Workload::build(
            ds,
            KernelType::Exponential,
            &ctx.scale,
            (1280, 960),
            ctx.seed,
        );

        let mut t = Table::new(
            format!("Fig 27 εKDV ({}, exponential) — time [s]", ds.name()),
            &["eps", "aKDE", "QUAD", "Z-order"],
        );
        for eps in EPS_SWEEP {
            let mut row = vec![format!("{eps}")];
            for m in [MethodKind::Akde, MethodKind::Quad, MethodKind::ZOrder] {
                let mut ev = w.evaluator_eps(m, eps).expect("εKDV method");
                let cell = time_eps_render(&mut *ev, &w.raster, eps, ctx.scale.cell_budget);
                row.push(fmt_cell(cell, ctx.scale.cell_budget));
            }
            t.push_row(row);
        }
        let _ = t.save_tsv(&ctx.out_dir, &format!("fig27_eps_{}", ds.name()));
        tables.push(t);

        let levels = estimate_levels(&w.tree, w.kernel, &w.raster, 32, 24);
        let mut t = Table::new(
            format!(
                "Fig 27 τKDV ({}, exponential) — time [s], µ = {:.4e}",
                ds.name(),
                levels.mu
            ),
            &["tau_k", "tKDC", "QUAD"],
        );
        for k in K_SWEEP {
            let tau = levels.tau(k);
            let mut row = vec![format!("{k:+.1}")];
            for m in [MethodKind::Tkdc, MethodKind::Quad] {
                let mut ev = w.evaluator_tau(m).expect("τKDV method");
                let cell = time_tau_render(&mut *ev, &w.raster, tau, ctx.scale.cell_budget);
                row.push(fmt_cell(cell, ctx.scale.cell_budget));
            }
            t.push_row(row);
        }
        let _ = t.save_tsv(&ctx.out_dir, &format!("fig27_tau_{}", ds.name()));
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_four_panels() {
        let tables = run(&FigureCtx::smoke());
        assert_eq!(tables.len(), 4);
    }
}

//! Fig 14: εKDV response time varying the relative error ε, resolution
//! 1280×960 (scaled), all four datasets.
//!
//! Paper expectation: QUAD ≥ one order of magnitude faster than KARL,
//! which beats aKDE and Z-order; all curves fall as ε grows.

use crate::figures::FigureCtx;
use crate::report::Table;
use crate::workload::{fmt_cell, time_eps_render, Workload};
use kdv_core::kernel::KernelType;
use kdv_core::method::MethodKind;
use kdv_data::Dataset;

/// The ε sweep of §7.2.
pub const EPS_SWEEP: [f64; 5] = [0.01, 0.02, 0.03, 0.04, 0.05];

/// Methods plotted in Fig 14.
pub const METHODS: [MethodKind; 4] = [
    MethodKind::Akde,
    MethodKind::Karl,
    MethodKind::Quad,
    MethodKind::ZOrder,
];

/// Runs the figure.
pub fn run(ctx: &FigureCtx) -> Vec<Table> {
    let mut tables = Vec::new();
    for ds in Dataset::ALL {
        let w = Workload::build(ds, KernelType::Gaussian, &ctx.scale, (1280, 960), ctx.seed);
        let mut t = Table::new(
            format!(
                "Fig 14 ({}) — εKDV time [s], n = {}, {}x{}",
                ds.name(),
                w.points.len(),
                w.raster.width(),
                w.raster.height()
            ),
            &["eps", "aKDE", "KARL", "QUAD", "Z-order"],
        );
        for eps in EPS_SWEEP {
            let mut row = vec![format!("{eps}")];
            for m in METHODS {
                let mut ev = w.evaluator_eps(m, eps).expect("εKDV method");
                let cell = time_eps_render(&mut *ev, &w.raster, eps, ctx.scale.cell_budget);
                row.push(fmt_cell(cell, ctx.scale.cell_budget));
            }
            t.push_row(row);
        }
        let _ = t.save_tsv(&ctx.out_dir, &format!("fig14_{}", ds.name().replace(' ', "_")));
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_four_panels() {
        let ctx = FigureCtx::smoke();
        let tables = run(&ctx);
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert_eq!(t.len(), EPS_SWEEP.len());
        }
    }
}

//! Fig 14: εKDV response time varying the relative error ε, resolution
//! 1280×960 (scaled), all four datasets.
//!
//! Paper expectation: QUAD ≥ one order of magnitude faster than KARL,
//! which beats aKDE and Z-order; all curves fall as ε grows.
//!
//! Besides the TSV table, each dataset writes a
//! `BENCH_fig14_<dataset>.json` sidecar: for the bound-based methods
//! the timing runs through the instrumented engine path, so every cell
//! carries refinement-event counts (heap pops, leaf scans, point
//! evaluations) alongside its wall time — the *why* behind the curves.

use crate::figures::FigureCtx;
use crate::report::Table;
use crate::workload::{fmt_cell, time_eps_render, time_eps_render_metered, Workload};
use kdv_core::kernel::KernelType;
use kdv_core::method::MethodKind;
use kdv_data::Dataset;
use kdv_telemetry::{json, RenderMetrics};

/// The ε sweep of §7.2.
pub const EPS_SWEEP: [f64; 5] = [0.01, 0.02, 0.03, 0.04, 0.05];

/// Methods plotted in Fig 14.
pub const METHODS: [MethodKind; 4] = [
    MethodKind::Akde,
    MethodKind::Karl,
    MethodKind::Quad,
    MethodKind::ZOrder,
];

/// Runs the figure.
pub fn run(ctx: &FigureCtx) -> Vec<Table> {
    let mut tables = Vec::new();
    for ds in Dataset::ALL {
        let w = Workload::build(ds, KernelType::Gaussian, &ctx.scale, (1280, 960), ctx.seed);
        let mut t = Table::new(
            format!(
                "Fig 14 ({}) — εKDV time [s], n = {}, {}x{}",
                ds.name(),
                w.points.len(),
                w.raster.width(),
                w.raster.height()
            ),
            &["eps", "aKDE", "KARL", "QUAD", "Z-order"],
        );
        let mut cells = Vec::new();
        for eps in EPS_SWEEP {
            let mut row = vec![format!("{eps}")];
            for m in METHODS {
                let cell = match m.bound_family() {
                    // Bound-based methods time through the probed path,
                    // which also yields the refinement-event counts.
                    Some(family) => {
                        let mut metrics = RenderMetrics::new();
                        let mut ev = w.refine_evaluator(family);
                        let cell = time_eps_render_metered(
                            &mut ev,
                            &w.raster,
                            eps,
                            ctx.scale.cell_budget,
                            &mut metrics,
                        );
                        cells.push(json::Value::obj(vec![
                            ("eps", json::num_f(eps)),
                            ("method", json::Value::Str(format!("{m:?}"))),
                            ("wall_s", cell.map_or(json::Value::Null, json::num_f)),
                            ("heap_pops", json::num_u(metrics.events.heap_pops)),
                            ("node_bounds", json::num_u(metrics.events.node_bounds)),
                            ("leaf_scans", json::num_u(metrics.events.leaf_scans)),
                            ("point_evals", json::num_u(metrics.events.point_evals)),
                            (
                                "mean_iters_per_pixel",
                                json::num_f(metrics.mean_iterations()),
                            ),
                        ]));
                        cell
                    }
                    None => {
                        let mut ev = w.evaluator_eps(m, eps).expect("εKDV method");
                        time_eps_render(&mut *ev, &w.raster, eps, ctx.scale.cell_budget)
                    }
                };
                row.push(fmt_cell(cell, ctx.scale.cell_budget));
            }
            t.push_row(row);
        }
        let slug = ds.name().replace(' ', "_");
        let doc = json::Value::obj(vec![
            ("schema", json::Value::Str("kdv-bench-fig/1".into())),
            ("figure", json::Value::Str("fig14".into())),
            ("dataset", json::Value::Str(ds.name().into())),
            ("n", json::num_u(w.points.len() as u64)),
            ("width", json::num_u(w.raster.width() as u64)),
            ("height", json::num_u(w.raster.height() as u64)),
            ("cells", json::Value::Arr(cells)),
        ]);
        let _ = std::fs::create_dir_all(&ctx.out_dir);
        let _ = std::fs::write(
            ctx.out_dir.join(format!("BENCH_fig14_{slug}.json")),
            doc.render(),
        );
        let _ = t.save_tsv(&ctx.out_dir, &format!("fig14_{slug}"));
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_four_panels() {
        let ctx = FigureCtx::smoke();
        let tables = run(&ctx);
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert_eq!(t.len(), EPS_SWEEP.len());
        }
    }

    #[test]
    fn smoke_run_writes_bench_json_with_event_counts() {
        let ctx = FigureCtx::smoke();
        run(&ctx);
        let path = ctx.out_dir.join("BENCH_fig14_crime.json");
        let text = std::fs::read_to_string(&path).expect("sidecar exists");
        let doc = json::parse(&text).expect("sidecar parses");
        use json::Value;
        assert_eq!(doc.get("figure").and_then(Value::as_str), Some("fig14"));
        let cells = doc.get("cells").and_then(Value::as_arr).expect("cells");
        // Three bound-based methods per ε step.
        assert_eq!(cells.len(), EPS_SWEEP.len() * 3);
        for cell in cells {
            let pops = cell
                .get("heap_pops")
                .and_then(Value::as_f64)
                .expect("heap_pops");
            assert!(pops > 0.0, "every cell refines at least once per pixel");
            assert!(cell.get("leaf_scans").is_some());
            assert!(cell.get("point_evals").is_some());
        }
    }
}

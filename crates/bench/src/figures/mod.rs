//! One runner per measured figure/table of the paper (see the
//! experiment index in `DESIGN.md`).

pub mod ablation;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig2;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod fig23;
pub mod fig24;
pub mod fig27;
pub mod tables;

use crate::report::Table;
use crate::workload::RunScale;
use std::path::PathBuf;

/// Shared context handed to every figure runner.
#[derive(Debug, Clone)]
pub struct FigureCtx {
    /// Workload scale.
    pub scale: RunScale,
    /// Directory for TSV/PPM artifacts.
    pub out_dir: PathBuf,
    /// Seed for dataset generation (fixed for reproducibility).
    pub seed: u64,
}

impl FigureCtx {
    /// Context with the default quick scale writing under
    /// `target/figures`.
    pub fn quick() -> Self {
        Self {
            scale: RunScale::quick(),
            out_dir: PathBuf::from("target/figures"),
            seed: 20200614, // SIGMOD 2020 conference date
        }
    }

    /// Context with the smoke scale (used by integration tests).
    pub fn smoke() -> Self {
        Self {
            scale: RunScale::smoke(),
            ..Self::quick()
        }
    }
}

/// A figure runner: produces one table per panel.
pub type FigureFn = fn(&FigureCtx) -> Vec<Table>;

/// The full registry: `(id, description, runner)`.
pub fn registry() -> Vec<(&'static str, &'static str, FigureFn)> {
    vec![
        (
            "fig2",
            "exact vs εKDV vs τKDV color maps (crime)",
            fig2::run,
        ),
        (
            "fig14",
            "εKDV response time vs ε, four datasets",
            fig14::run,
        ),
        (
            "fig15",
            "τKDV response time vs τ, four datasets",
            fig15::run,
        ),
        (
            "fig16",
            "εKDV response time vs resolution, ε = 0.01",
            fig16::run,
        ),
        (
            "fig17",
            "response time vs dataset size (hep), εKDV and τKDV",
            fig17::run,
        ),
        (
            "fig18",
            "bound convergence vs iterations, KARL vs QUAD (home)",
            fig18::run,
        ),
        (
            "fig19",
            "εKDV visualization quality across methods (home)",
            fig19::run,
        ),
        (
            "fig20",
            "progressive framework: avg relative error vs time budget",
            fig20::run,
        ),
        (
            "fig21",
            "QUAD progressive snapshots over five budgets (home)",
            fig21::run,
        ),
        (
            "fig22",
            "εKDV time, triangular & cosine kernels (crime, hep)",
            fig22::run,
        ),
        (
            "fig23",
            "τKDV time, triangular & cosine kernels (crime, hep)",
            fig23::run,
        ),
        (
            "fig24",
            "KDE throughput vs dimensionality via PCA (home, hep)",
            fig24::run,
        ),
        (
            "fig27",
            "exponential kernel: εKDV & τKDV times (crime, hep)",
            fig27::run,
        ),
        (
            "ablation",
            "refinement effort per bound family (mechanism behind Figs 14-18)",
            ablation::run,
        ),
        (
            "table3",
            "refinement running steps (toy example)",
            tables::run_table3,
        ),
        ("table5", "dataset inventory", tables::run_table5),
        ("table6", "method capability matrix", tables::run_table6),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_measured_artifact() {
        let ids: Vec<&str> = registry().iter().map(|(id, _, _)| *id).collect();
        for expected in [
            "fig2", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
            "fig22", "fig23", "fig24", "fig27", "ablation", "table3", "table5", "table6",
        ] {
            assert!(ids.contains(&expected), "missing runner for {expected}");
        }
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<&str> = registry().iter().map(|(id, _, _)| *id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }
}

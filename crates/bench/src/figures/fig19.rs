//! Fig 19: εKDV visualization quality at ε = 0.01 — the color maps of
//! Exact, aKDE, Z-Order, KARL and QUAD on *home* are indistinguishable.
//!
//! The harness quantifies what the paper shows visually: mean relative
//! error against the exact grid per method (all ≪ ε for deterministic
//! methods), and writes the five PPM color maps.

use crate::figures::FigureCtx;
use crate::report::Table;
use crate::workload::Workload;
use kdv_core::kernel::KernelType;
use kdv_core::method::MethodKind;
use kdv_data::Dataset;
use kdv_viz::colormap::ColorMap;
use kdv_viz::render::render_eps;

const EPS: f64 = 0.01;

/// Methods compared in Fig 19 (Exact is the reference).
pub const METHODS: [MethodKind; 5] = [
    MethodKind::Exact,
    MethodKind::Akde,
    MethodKind::ZOrder,
    MethodKind::Karl,
    MethodKind::Quad,
];

/// Runs the figure.
pub fn run(ctx: &FigureCtx) -> Vec<Table> {
    let w = Workload::build(
        Dataset::Home,
        KernelType::Gaussian,
        &ctx.scale,
        (1280, 960),
        ctx.seed,
    );
    let cm = ColorMap::heat();

    let mut exact_ev = w.evaluator_eps(MethodKind::Exact, EPS).expect("exact");
    let exact = render_eps(&mut *exact_ev, &w.raster, EPS);

    let mut t = Table::new(
        "Fig 19 — εKDV quality on home, ε = 0.01 (mean relative error vs exact)",
        &["method", "mean_rel_error", "guarantee"],
    );
    let _ = std::fs::create_dir_all(&ctx.out_dir);
    for m in METHODS {
        let mut ev = w.evaluator_eps(m, EPS).expect("εKDV method");
        let grid = render_eps(&mut *ev, &w.raster, EPS);
        let err = grid.mean_relative_error(&exact);
        let guarantee = match m {
            MethodKind::Exact => "exact",
            MethodKind::ZOrder => "probabilistic",
            _ => "deterministic (1±ε)",
        };
        t.push_row(vec![
            m.name().into(),
            format!("{err:.3e}"),
            guarantee.into(),
        ]);
        let img = cm.render(&grid, true);
        let _ = img.save_ppm(&ctx.out_dir.join(format!("fig19_{}.ppm", m.name())));
    }
    let _ = t.save_tsv(&ctx.out_dir, "fig19_quality");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_methods_meet_eps() {
        let tables = run(&FigureCtx::smoke());
        let tsv = tables[0].to_tsv();
        for line in tsv.lines().skip(2) {
            let cells: Vec<&str> = line.split('\t').collect();
            let err: f64 = cells[1].parse().expect("error cell");
            if cells[2].starts_with("deterministic") || cells[2] == "exact" {
                assert!(err <= EPS, "{} error {err} exceeds ε", cells[0]);
            }
        }
    }
}

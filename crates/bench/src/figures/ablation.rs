//! Ablation: where does QUAD's speedup come from?
//!
//! Not a paper figure — this regenerates the *mechanism* behind Figs
//! 14–18 (DESIGN.md §5): for each dataset and bound family, the total
//! number of refinement iterations (priority-queue pops), exact leaf
//! evaluations, node-bound evaluations, and point-kernel evaluations
//! across a full εKDV render, plus their `total_work` sum. Tighter
//! bounds → fewer pops → fewer leaf scans; wall-clock then follows,
//! modulated by each family's per-node evaluation cost (see the
//! `bound_eval` criterion bench for that half of the story).

use crate::figures::FigureCtx;
use crate::report::Table;
use crate::workload::Workload;
use kdv_core::bounds::BoundFamily;
use kdv_core::engine::RefineEvaluator;
use kdv_core::kernel::KernelType;
use kdv_data::Dataset;

const EPS: f64 = 0.01;

/// Runs the ablation.
pub fn run(ctx: &FigureCtx) -> Vec<Table> {
    let mut t = Table::new(
        "Ablation — refinement effort per full εKDV render (ε = 0.01)",
        &[
            "dataset",
            "family",
            "iterations",
            "exact_leaves",
            "iters_vs_interval",
            "node_bounds",
            "point_evals",
            "total_work",
        ],
    );
    for ds in Dataset::ALL {
        let w = Workload::build(ds, KernelType::Gaussian, &ctx.scale, (1280, 960), ctx.seed);
        let mut interval_iters = 0usize;
        for family in BoundFamily::ALL {
            let mut ev = RefineEvaluator::new(&w.tree, w.kernel, family);
            let mut iters = 0usize;
            let mut leaves = 0usize;
            let mut bounds = 0usize;
            let mut points = 0usize;
            let mut work = 0usize;
            for row in 0..w.raster.height() {
                for col in 0..w.raster.width() {
                    let q = w.raster.pixel_center(col, row);
                    std::hint::black_box(ev.eval_eps(&q, EPS));
                    let s = ev.last_stats();
                    iters += s.iterations;
                    leaves += s.exact_leaves;
                    bounds += s.node_bounds;
                    points += s.point_evals;
                    work += s.total_work();
                }
            }
            if family == BoundFamily::Interval {
                interval_iters = iters;
            }
            t.push_row(vec![
                ds.name().into(),
                format!("{family:?}"),
                format!("{iters}"),
                format!("{leaves}"),
                format!("{:.3}", iters as f64 / interval_iters.max(1) as f64),
                format!("{bounds}"),
                format!("{points}"),
                format!("{work}"),
            ]);
        }
    }
    let _ = t.save_tsv(&ctx.out_dir, "ablation_refinement_effort");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_never_needs_more_iterations() {
        let tables = run(&FigureCtx::smoke());
        let tsv = tables[0].to_tsv();
        for chunk in tsv.lines().skip(2).collect::<Vec<_>>().chunks(3) {
            let iters: Vec<usize> = chunk
                .iter()
                .map(|l| l.split('\t').nth(2).expect("iters").parse().expect("n"))
                .collect();
            // [Interval, Linear, Quadratic] per dataset.
            assert!(
                iters[2] <= iters[0],
                "QUAD iterations exceed interval: {iters:?}"
            );
        }
    }

    #[test]
    fn work_columns_are_consistent() {
        let tables = run(&FigureCtx::smoke());
        let tsv = tables[0].to_tsv();
        for line in tsv.lines().skip(2) {
            let cols: Vec<&str> = line.split('\t').collect();
            let n = |i: usize| cols[i].parse::<usize>().expect("numeric column");
            let (iters, bounds, points, work) = (n(2), n(5), n(6), n(7));
            assert!(bounds > 0 && points > 0, "work columns must be counted");
            // total_work = iterations + node_bounds + point_evals (+
            // resyncs, which the table doesn't break out — hence ≥).
            assert!(work >= iters + bounds + points, "inconsistent: {line}");
        }
    }
}

//! Fig 17: response time vs dataset size on *hep* (1 M – 7 M points,
//! scaled): (a) εKDV with ε = 0.01, (b) τKDV with τ = µ.
//!
//! Paper expectation: all methods grow with n; QUAD keeps a
//! one-order-of-magnitude lead across sizes in both variants.

use crate::figures::FigureCtx;
use crate::report::Table;
use crate::workload::{fmt_cell, time_eps_render, time_tau_render, Workload};
use kdv_core::kernel::KernelType;
use kdv_core::method::MethodKind;
use kdv_core::threshold::estimate_levels;
use kdv_data::Dataset;

/// The paper's dataset-size sweep (millions of points, pre-scaling).
pub const PAPER_SIZES_M: [usize; 4] = [1, 3, 5, 7];

const EPS: f64 = 0.01;

/// Runs both panels.
pub fn run(ctx: &FigureCtx) -> Vec<Table> {
    let mut eps_table = Table::new(
        "Fig 17a — εKDV time [s] vs hep size, ε = 0.01",
        &[
            "n_million_paper",
            "n_scaled",
            "aKDE",
            "KARL",
            "QUAD",
            "Z-order",
        ],
    );
    let mut tau_table = Table::new(
        "Fig 17b — τKDV time [s] vs hep size, τ = µ",
        &["n_million_paper", "n_scaled", "tKDC", "KARL", "QUAD"],
    );

    for m_pts in PAPER_SIZES_M {
        let n = ((m_pts as f64 * 1e6 * ctx.scale.n_frac) as usize).max(500);
        let (rw, rh) = ctx.scale.resolution(1280, 960);
        let w = Workload::build_with_n(Dataset::Hep, KernelType::Gaussian, n, (rw, rh), ctx.seed);

        let mut row = vec![format!("{m_pts}"), format!("{n}")];
        for m in [
            MethodKind::Akde,
            MethodKind::Karl,
            MethodKind::Quad,
            MethodKind::ZOrder,
        ] {
            let mut ev = w.evaluator_eps(m, EPS).expect("εKDV method");
            let cell = time_eps_render(&mut *ev, &w.raster, EPS, ctx.scale.cell_budget);
            row.push(fmt_cell(cell, ctx.scale.cell_budget));
        }
        eps_table.push_row(row);

        let levels = estimate_levels(&w.tree, w.kernel, &w.raster, 32, 24);
        let mut row = vec![format!("{m_pts}"), format!("{n}")];
        for m in [MethodKind::Tkdc, MethodKind::Karl, MethodKind::Quad] {
            let mut ev = w.evaluator_tau(m).expect("τKDV method");
            let cell = time_tau_render(&mut *ev, &w.raster, levels.mu, ctx.scale.cell_budget);
            row.push(fmt_cell(cell, ctx.scale.cell_budget));
        }
        tau_table.push_row(row);
    }

    let _ = eps_table.save_tsv(&ctx.out_dir, "fig17a_eps");
    let _ = tau_table.save_tsv(&ctx.out_dir, "fig17b_tau");
    vec![eps_table, tau_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_sweeps_sizes() {
        let tables = run(&FigureCtx::smoke());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), PAPER_SIZES_M.len());
        assert_eq!(tables[1].len(), PAPER_SIZES_M.len());
    }
}

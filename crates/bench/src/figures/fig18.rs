//! Fig 18: lower/upper bound values versus refinement iteration for
//! KARL and QUAD, at the pixel with the highest KDE value of the *home*
//! dataset, ε = 0.01.
//!
//! Paper expectation: QUAD's bounds close (and the query stops) after
//! far fewer iterations than KARL's — the tightness of §4 made visible.

use crate::figures::FigureCtx;
use crate::report::Table;
use crate::workload::Workload;
use kdv_core::bounds::BoundFamily;
use kdv_core::engine::RefineEvaluator;
use kdv_core::kernel::KernelType;
use kdv_data::Dataset;

const EPS: f64 = 0.01;

/// Runs the figure.
pub fn run(ctx: &FigureCtx) -> Vec<Table> {
    let w = Workload::build(
        Dataset::Home,
        KernelType::Gaussian,
        &ctx.scale,
        (1280, 960),
        ctx.seed,
    );

    // Find the hottest pixel on a coarse subgrid (the paper samples the
    // pixel with the highest KDE value).
    let coarse = w.raster.with_resolution(48, 36);
    let mut probe = RefineEvaluator::new(&w.tree, w.kernel, BoundFamily::Quadratic);
    let mut best_q = coarse.pixel_center(0, 0);
    let mut best_f = f64::NEG_INFINITY;
    for row in 0..coarse.height() {
        for col in 0..coarse.width() {
            let q = coarse.pixel_center(col, row);
            let f = probe.eval_eps(&q, 1e-3);
            if f > best_f {
                best_f = f;
                best_q = q;
            }
        }
    }

    let mut karl_trace = Vec::new();
    let mut karl = RefineEvaluator::new(&w.tree, w.kernel, BoundFamily::Linear);
    karl.eval_eps_traced(&best_q, EPS, &mut karl_trace);

    let mut quad_trace = Vec::new();
    let mut quad = RefineEvaluator::new(&w.tree, w.kernel, BoundFamily::Quadratic);
    quad.eval_eps_traced(&best_q, EPS, &mut quad_trace);

    let mut t = Table::new(
        format!(
            "Fig 18 — bound convergence at hottest pixel (home), QUAD stops at {}, KARL at {}",
            quad_trace.len(),
            karl_trace.len()
        ),
        &["iteration", "LB_KARL", "UB_KARL", "LB_QUAD", "UB_QUAD"],
    );
    let len = karl_trace.len().max(quad_trace.len());
    for i in 0..len {
        let (klb, kub) = karl_trace
            .get(i)
            .copied()
            .unwrap_or(*karl_trace.last().expect("non-empty trace"));
        let (qlb, qub) = quad_trace
            .get(i)
            .copied()
            .unwrap_or(*quad_trace.last().expect("non-empty trace"));
        t.push_row(vec![
            format!("{i}"),
            format!("{klb:.6e}"),
            format!("{kub:.6e}"),
            format!("{qlb:.6e}"),
            format!("{qub:.6e}"),
        ]);
    }
    let _ = t.save_tsv(&ctx.out_dir, "fig18_convergence");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_stops_no_later_than_karl() {
        let tables = run(&FigureCtx::smoke());
        let title = tables[0].title().to_string();
        // "QUAD stops at X, KARL at Y" with X ≤ Y.
        let nums: Vec<usize> = title
            .split(|c: char| !c.is_ascii_digit())
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().expect("number"))
            .collect();
        let (quad_stop, karl_stop) = (nums[nums.len() - 2], nums[nums.len() - 1]);
        assert!(
            quad_stop <= karl_stop,
            "QUAD ({quad_stop}) must stop no later than KARL ({karl_stop})"
        );
    }
}

//! Fig 15: τKDV response time varying the threshold τ over
//! `µ + k·σ, k ∈ {−0.3 … +0.3}`, all four datasets.
//!
//! Paper expectation: QUAD ≥ one order of magnitude faster than tKDC
//! and KARL at every threshold; times peak near τ ≈ µ where the most
//! pixels are boundary cases.

use crate::figures::FigureCtx;
use crate::report::Table;
use crate::workload::{fmt_cell, time_tau_render, Workload};
use kdv_core::kernel::KernelType;
use kdv_core::method::MethodKind;
use kdv_core::threshold::estimate_levels;
use kdv_data::Dataset;

/// The k of `τ = µ + k·σ` (paper's seven thresholds, §7.2).
pub const K_SWEEP: [f64; 7] = [-0.3, -0.2, -0.1, 0.0, 0.1, 0.2, 0.3];

/// Methods plotted in Fig 15.
pub const METHODS: [MethodKind; 3] = [MethodKind::Tkdc, MethodKind::Karl, MethodKind::Quad];

/// Runs the figure.
pub fn run(ctx: &FigureCtx) -> Vec<Table> {
    let mut tables = Vec::new();
    for ds in Dataset::ALL {
        let w = Workload::build(ds, KernelType::Gaussian, &ctx.scale, (1280, 960), ctx.seed);
        let levels = estimate_levels(&w.tree, w.kernel, &w.raster, 48, 36);
        let mut t = Table::new(
            format!(
                "Fig 15 ({}) — τKDV time [s], µ = {:.4e}, σ = {:.4e}",
                ds.name(),
                levels.mu,
                levels.sigma
            ),
            &["tau_k", "tKDC", "KARL", "QUAD"],
        );
        for k in K_SWEEP {
            let tau = levels.tau(k);
            let mut row = vec![format!("{k:+.1}")];
            for m in METHODS {
                let mut ev = w.evaluator_tau(m).expect("τKDV method");
                let cell = time_tau_render(&mut *ev, &w.raster, tau, ctx.scale.cell_budget);
                row.push(fmt_cell(cell, ctx.scale.cell_budget));
            }
            t.push_row(row);
        }
        let _ = t.save_tsv(
            &ctx.out_dir,
            &format!("fig15_{}", ds.name().replace(' ', "_")),
        );
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_sweeps_seven_thresholds() {
        let tables = run(&FigureCtx::smoke());
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert_eq!(t.len(), K_SWEEP.len());
        }
    }
}

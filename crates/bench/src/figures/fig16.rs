//! Fig 16: εKDV response time varying the screen resolution
//! (320×240 … 2560×1920, scaled), ε = 0.01, all four datasets.
//!
//! Paper expectation: every method scales linearly with pixel count;
//! QUAD stays an order of magnitude below the rest at all resolutions.

use crate::figures::FigureCtx;
use crate::report::Table;
use crate::workload::{fmt_cell, time_eps_render, Workload};
use kdv_core::kernel::KernelType;
use kdv_core::method::MethodKind;
use kdv_core::raster::PAPER_RESOLUTIONS;
use kdv_data::Dataset;

/// Methods plotted in Fig 16.
pub const METHODS: [MethodKind; 4] = [
    MethodKind::Akde,
    MethodKind::Karl,
    MethodKind::Quad,
    MethodKind::ZOrder,
];

const EPS: f64 = 0.01;

/// Runs the figure.
pub fn run(ctx: &FigureCtx) -> Vec<Table> {
    let mut tables = Vec::new();
    for ds in Dataset::ALL {
        // Build once at the largest resolution; reuse raster windows.
        let w = Workload::build(ds, KernelType::Gaussian, &ctx.scale, (2560, 1920), ctx.seed);
        let mut t = Table::new(
            format!(
                "Fig 16 ({}) — εKDV time [s] vs resolution, ε = 0.01",
                ds.name()
            ),
            &["resolution", "aKDE", "KARL", "QUAD", "Z-order"],
        );
        for (pw, ph) in PAPER_RESOLUTIONS {
            let (rw, rh) = ctx.scale.resolution(pw, ph);
            let raster = w.raster.with_resolution(rw, rh);
            let mut row = vec![format!("{pw}x{ph}")];
            for m in METHODS {
                let mut ev = w.evaluator_eps(m, EPS).expect("εKDV method");
                let cell = time_eps_render(&mut *ev, &raster, EPS, ctx.scale.cell_budget);
                row.push(fmt_cell(cell, ctx.scale.cell_budget));
            }
            t.push_row(row);
        }
        let _ = t.save_tsv(
            &ctx.out_dir,
            &format!("fig16_{}", ds.name().replace(' ', "_")),
        );
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_covers_four_resolutions() {
        let tables = run(&FigureCtx::smoke());
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert_eq!(t.len(), PAPER_RESOLUTIONS.len());
        }
    }
}

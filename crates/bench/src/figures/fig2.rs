//! Fig 2: the motivating illustration — exact KDV, εKDV (ε = 0.01) and
//! τKDV color maps on the crime dataset look respectively identical /
//! two-colored.

use crate::figures::FigureCtx;
use crate::report::Table;
use crate::workload::Workload;
use kdv_core::kernel::KernelType;
use kdv_core::method::MethodKind;
use kdv_core::threshold::estimate_levels;
use kdv_data::Dataset;
use kdv_viz::colormap::{render_binary, ColorMap};
use kdv_viz::render::{render_eps, render_tau};

/// Runs the figure: writes three PPMs and a summary table.
pub fn run(ctx: &FigureCtx) -> Vec<Table> {
    let w = Workload::build(
        Dataset::Crime,
        KernelType::Gaussian,
        &ctx.scale,
        (1280, 960),
        ctx.seed,
    );
    let cm = ColorMap::heat();
    let _ = std::fs::create_dir_all(&ctx.out_dir);

    let mut exact_ev = w.evaluator_eps(MethodKind::Exact, 0.01).expect("exact");
    let exact = render_eps(&mut *exact_ev, &w.raster, 0.01);
    let _ = cm
        .render(&exact, true)
        .save_ppm(&ctx.out_dir.join("fig2a_exact.ppm"));

    let mut quad_ev = w.evaluator_eps(MethodKind::Quad, 0.01).expect("QUAD");
    let approx = render_eps(&mut *quad_ev, &w.raster, 0.01);
    let _ = cm
        .render(&approx, true)
        .save_ppm(&ctx.out_dir.join("fig2b_epskdv.ppm"));

    let levels = estimate_levels(&w.tree, w.kernel, &w.raster, 48, 36);
    let tau = levels.tau(0.1);
    let mut tau_ev = w.evaluator_tau(MethodKind::Quad).expect("QUAD τ");
    let mask = render_tau(&mut *tau_ev, &w.raster, tau);
    let _ = render_binary(&mask).save_ppm(&ctx.out_dir.join("fig2c_taukdv.ppm"));

    let mut t = Table::new(
        "Fig 2 — exact vs εKDV vs τKDV (crime)",
        &["panel", "metric", "value"],
    );
    t.push_row(vec![
        "(b) εKDV vs (a) exact".into(),
        "mean relative error".into(),
        format!("{:.3e}", approx.mean_relative_error(&exact)),
    ]);
    t.push_row(vec![
        "(c) τKDV".into(),
        "hot-pixel fraction".into(),
        format!(
            "{:.4}",
            mask.count_hot() as f64 / (w.raster.num_pixels() as f64)
        ),
    ]);
    let _ = t.save_tsv(&ctx.out_dir, "fig2_summary");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_emits_summary() {
        let ctx = FigureCtx::smoke();
        let tables = run(&ctx);
        assert_eq!(tables[0].len(), 2);
        for f in ["fig2a_exact.ppm", "fig2b_epskdv.ppm", "fig2c_taukdv.ppm"] {
            assert!(ctx.out_dir.join(f).exists(), "missing {f}");
        }
    }
}

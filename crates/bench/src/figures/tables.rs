//! The paper's tables: Table 3 (running steps), Table 5 (datasets) and
//! Table 6 (method capabilities).

use crate::figures::FigureCtx;
use crate::report::Table;
use kdv_core::bandwidth::scott_gamma;
use kdv_core::bounds::BoundFamily;
use kdv_core::engine::RefineEvaluator;
use kdv_core::kernel::Kernel;
use kdv_core::method::MethodKind;
use kdv_data::Dataset;
use kdv_geom::{Mbr, PointSet};
use kdv_index::{BuildConfig, KdTree};

/// Table 3: the running steps of the indexing framework on a toy
/// 18-point set mirroring the paper's Fig 3 (three levels, four
/// leaves), showing the maintained `lb`/`ub` per popped node.
pub fn run_table3(ctx: &FigureCtx) -> Vec<Table> {
    // 18 points in four spatial clusters ≈ the paper's leaf structure.
    let flat: Vec<f64> = vec![
        // R1: 5 points near (0, 0)
        0.0, 0.0, 0.2, 0.1, 0.1, 0.3, 0.3, 0.2, 0.15, 0.15, // R2: 4 points near (2, 0)
        2.0, 0.0, 2.1, 0.2, 2.2, 0.1, 2.05, 0.15, // R3: 4 points near (0, 2)
        0.0, 2.0, 0.2, 2.1, 0.1, 2.2, 0.15, 2.05, // R4: 5 points near (2, 2)
        2.0, 2.0, 2.1, 2.2, 2.2, 2.1, 2.05, 2.15, 2.15, 2.05,
    ];
    let ps = PointSet::from_rows(2, &flat);
    let tree = KdTree::build(
        &ps,
        BuildConfig {
            leaf_capacity: 5,
            ..BuildConfig::default()
        },
    );
    let kernel = Kernel::gaussian(scott_gamma(&ps).gamma);
    let q = [0.5, 0.5];

    let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
    let mut trace = Vec::new();
    ev.eval_eps_traced(&q, 1e-6, &mut trace);

    let mut t = Table::new(
        "Table 3 — running steps of the refinement framework (toy tree, pixel q = (0.5, 0.5))",
        &["step", "lb", "ub", "gap"],
    );
    for (i, (lb, ub)) in trace.iter().enumerate() {
        t.push_row(vec![
            format!("{}", i + 1),
            format!("{lb:.6}"),
            format!("{ub:.6}"),
            format!("{:.6}", ub - lb),
        ]);
    }
    let _ = t.save_tsv(&ctx.out_dir, "table3_running_steps");
    vec![t]
}

/// Table 5: the dataset inventory with generated statistics.
pub fn run_table5(ctx: &FigureCtx) -> Vec<Table> {
    let mut t = Table::new(
        "Table 5 — datasets (emulated; see DESIGN.md substitution #1)",
        &["name", "n_paper", "n_scaled", "dim", "x_extent", "y_extent"],
    );
    for ds in Dataset::ALL {
        let n = ctx.scale.dataset_size(ds);
        let ps = ds.generate(n, ctx.seed);
        let mbr = Mbr::of_set(&ps).expect("non-empty");
        t.push_row(vec![
            ds.name().into(),
            format!("{}", ds.paper_size()),
            format!("{n}"),
            format!("{}", ps.dim()),
            format!("{:.4}", mbr.extent(0)),
            format!("{:.4}", mbr.extent(1)),
        ]);
    }
    let _ = t.save_tsv(&ctx.out_dir, "table5_datasets");
    vec![t]
}

/// Table 6: the method capability matrix, generated from the same code
/// the engine enforces.
pub fn run_table6(ctx: &FigureCtx) -> Vec<Table> {
    let mut t = Table::new(
        "Table 6 — methods for the two variants of KDV",
        &[
            "variant", "EXACT", "Scikit", "Z-order", "aKDE", "tKDC", "KARL", "QUAD",
        ],
    );
    let check = |b: bool| if b { "Y" } else { "x" }.to_string();
    t.push_row(
        std::iter::once("εKDV".to_string())
            .chain(MethodKind::ALL.iter().map(|m| check(m.supports_eps())))
            .collect(),
    );
    t.push_row(
        std::iter::once("τKDV".to_string())
            .chain(MethodKind::ALL.iter().map(|m| check(m.supports_tau())))
            .collect(),
    );
    let _ = t.save_tsv(&ctx.out_dir, "table6_methods");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_trace_converges() {
        let tables = run_table3(&FigureCtx::smoke());
        let t = &tables[0];
        assert!(t.len() >= 2, "expected multiple refinement steps");
        let tsv = t.to_tsv();
        let last = tsv.lines().last().expect("rows");
        let gap: f64 = last.split('\t').nth(3).expect("gap").parse().expect("f64");
        assert!(gap.abs() < 1e-5, "final gap {gap} should be ~0");
    }

    #[test]
    fn table6_matches_paper() {
        let tables = run_table6(&FigureCtx::smoke());
        let tsv = tables[0].to_tsv();
        let rows: Vec<&str> = tsv.lines().skip(2).collect();
        assert_eq!(rows[0], "εKDV\tY\tY\tY\tY\tx\tY\tY");
        assert_eq!(rows[1], "τKDV\tY\tx\tx\tx\tY\tY\tY");
    }

    #[test]
    fn table5_lists_four_datasets() {
        let tables = run_table5(&FigureCtx::smoke());
        assert_eq!(tables[0].len(), 4);
    }
}

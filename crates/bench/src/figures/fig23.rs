//! Fig 23: τKDV response time for the **triangular** and **cosine**
//! kernels on crime and hep, varying τ over `µ + k·σ`.
//!
//! Paper expectation: QUAD at least one order of magnitude below tKDC.

use crate::figures::FigureCtx;
use crate::report::Table;
use crate::workload::{fmt_cell, time_tau_render, Workload};
use kdv_core::kernel::KernelType;
use kdv_core::method::MethodKind;
use kdv_core::threshold::estimate_levels;
use kdv_data::Dataset;

/// The k of `τ = µ + k·σ` (Fig 23 plots five thresholds).
pub const K_SWEEP: [f64; 5] = [-0.2, -0.1, 0.0, 0.1, 0.2];

/// Methods plotted.
pub const METHODS: [MethodKind; 2] = [MethodKind::Tkdc, MethodKind::Quad];

/// Runs all four panels.
pub fn run(ctx: &FigureCtx) -> Vec<Table> {
    let mut tables = Vec::new();
    for kernel_ty in [KernelType::Triangular, KernelType::Cosine] {
        for ds in [Dataset::Crime, Dataset::Hep] {
            let w = Workload::build(ds, kernel_ty, &ctx.scale, (1280, 960), ctx.seed);
            let levels = estimate_levels(&w.tree, w.kernel, &w.raster, 32, 24);
            let mut t = Table::new(
                format!(
                    "Fig 23 ({}, {}) — τKDV time [s], µ = {:.4e}",
                    ds.name(),
                    kernel_ty.name(),
                    levels.mu
                ),
                &["tau_k", "tKDC", "QUAD"],
            );
            for k in K_SWEEP {
                let tau = levels.tau(k);
                let mut row = vec![format!("{k:+.1}")];
                for m in METHODS {
                    let mut ev = w.evaluator_tau(m).expect("τKDV method");
                    let cell = time_tau_render(&mut *ev, &w.raster, tau, ctx.scale.cell_budget);
                    row.push(fmt_cell(cell, ctx.scale.cell_budget));
                }
                t.push_row(row);
            }
            let _ = t.save_tsv(
                &ctx.out_dir,
                &format!("fig23_{}_{}", ds.name(), kernel_ty.name()),
            );
            tables.push(t);
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_four_panels() {
        let tables = run(&FigureCtx::smoke());
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert_eq!(t.len(), K_SWEEP.len());
        }
    }
}

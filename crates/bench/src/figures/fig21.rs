//! Fig 21: QUAD-based progressive visualization on *home* at five
//! budgets t ∈ {0.02, 0.05, 0.2, 0.5, 2} s — the 0.5 s snapshot is
//! already a "reasonable visualization result" (the paper's real-time
//! headline).

use crate::figures::FigureCtx;
use crate::report::Table;
use crate::workload::Workload;
use kdv_core::kernel::KernelType;
use kdv_core::method::MethodKind;
use kdv_data::Dataset;
use kdv_viz::colormap::ColorMap;
use kdv_viz::render::{render_eps, render_eps_progressive};
use std::time::Duration;

/// The paper's snapshot budgets (seconds).
pub const BUDGETS_S: [f64; 5] = [0.02, 0.05, 0.2, 0.5, 2.0];

const EPS: f64 = 0.01;

/// Runs the figure: writes one PPM per budget plus an error table.
pub fn run(ctx: &FigureCtx) -> Vec<Table> {
    let w = Workload::build(
        Dataset::Home,
        KernelType::Gaussian,
        &ctx.scale,
        (1280, 960),
        ctx.seed,
    );
    let cm = ColorMap::heat();
    let _ = std::fs::create_dir_all(&ctx.out_dir);

    let mut exact_ev = w.evaluator_eps(MethodKind::Exact, EPS).expect("exact");
    let truth = render_eps(&mut *exact_ev, &w.raster, EPS);

    let mut t = Table::new(
        "Fig 21 — QUAD progressive snapshots on home",
        &["t_sec", "pixels_evaluated", "fraction", "avg_rel_error"],
    );
    for budget in BUDGETS_S {
        let mut ev = w.evaluator_eps(MethodKind::Quad, EPS).expect("QUAD");
        let out = render_eps_progressive(
            &mut *ev,
            &w.raster,
            EPS,
            Some(Duration::from_secs_f64(budget)),
        );
        let err = out.grid.mean_relative_error(&truth);
        t.push_row(vec![
            format!("{budget}"),
            format!("{}", out.evaluated),
            format!("{:.4}", out.evaluated as f64 / w.raster.num_pixels() as f64),
            format!("{err:.4e}"),
        ]);
        let img = cm.render(&out.grid, true);
        let _ = img.save_ppm(&ctx.out_dir.join(format!("fig21_t{budget}.ppm")));
    }
    let _ = t.save_tsv(&ctx.out_dir, "fig21_snapshots");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longer_budgets_evaluate_at_least_as_many_pixels() {
        let tables = run(&FigureCtx::smoke());
        let tsv = tables[0].to_tsv();
        let counts: Vec<usize> = tsv
            .lines()
            .skip(2)
            .map(|l| l.split('\t').nth(1).expect("count").parse().expect("n"))
            .collect();
        assert_eq!(counts.len(), BUDGETS_S.len());
        for w in counts.windows(2) {
            assert!(
                w[1] >= w[0],
                "pixel counts must be non-decreasing: {counts:?}"
            );
        }
    }
}

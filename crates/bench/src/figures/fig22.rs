//! Fig 22: εKDV response time for the **triangular** and **cosine**
//! kernels on crime and hep, varying ε.
//!
//! KARL is absent by construction (§5.1: no `O(d)` linear bound exists
//! for distance kernels); QUAD still beats aKDE and Z-Order by an order
//! of magnitude.

use crate::figures::FigureCtx;
use crate::report::Table;
use crate::workload::{fmt_cell, time_eps_render, Workload};
use kdv_core::kernel::KernelType;
use kdv_core::method::MethodKind;
use kdv_data::Dataset;

/// ε sweep shared with Fig 14.
pub const EPS_SWEEP: [f64; 5] = [0.01, 0.02, 0.03, 0.04, 0.05];

/// Methods plotted (KARL unsupported for these kernels).
pub const METHODS: [MethodKind; 3] = [MethodKind::Akde, MethodKind::Quad, MethodKind::ZOrder];

/// Runs all four panels.
pub fn run(ctx: &FigureCtx) -> Vec<Table> {
    let mut tables = Vec::new();
    for kernel_ty in [KernelType::Triangular, KernelType::Cosine] {
        for ds in [Dataset::Crime, Dataset::Hep] {
            let w = Workload::build(ds, kernel_ty, &ctx.scale, (1280, 960), ctx.seed);
            let mut t = Table::new(
                format!(
                    "Fig 22 ({}, {}) — εKDV time [s]",
                    ds.name(),
                    kernel_ty.name()
                ),
                &["eps", "aKDE", "QUAD", "Z-order"],
            );
            for eps in EPS_SWEEP {
                let mut row = vec![format!("{eps}")];
                for m in METHODS {
                    let mut ev = w.evaluator_eps(m, eps).expect("εKDV method");
                    let cell = time_eps_render(&mut *ev, &w.raster, eps, ctx.scale.cell_budget);
                    row.push(fmt_cell(cell, ctx.scale.cell_budget));
                }
                t.push_row(row);
            }
            let _ = t.save_tsv(
                &ctx.out_dir,
                &format!("fig22_{}_{}", ds.name(), kernel_ty.name()),
            );
            tables.push(t);
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_four_panels() {
        let tables = run(&FigureCtx::smoke());
        assert_eq!(tables.len(), 4);
    }

    #[test]
    fn karl_is_rejected_for_distance_kernels() {
        let ctx = FigureCtx::smoke();
        let w = Workload::build(
            Dataset::Crime,
            KernelType::Triangular,
            &ctx.scale,
            (320, 240),
            ctx.seed,
        );
        assert!(w.evaluator_eps(MethodKind::Karl, 0.01).is_none());
    }
}

//! Fig 24: general KDE throughput (queries/second) versus
//! dimensionality 2–10 on *home* and *hep*, Gaussian kernel, ε = 0.01.
//!
//! The paper varies dimensionality "via PCA dimensionality reduction";
//! we generate 10-dimensional emulations ([`Dataset::generate_highdim`])
//! and PCA-project them to d ∈ {2, 4, 6, 8, 10}. SCAN (= EXACT) joins
//! the comparison here, as in the paper.
//!
//! Paper expectation: bound-based throughput falls with d (QUAD's
//! `O(d²)` moments and looser high-d boxes) but QUAD stays on top
//! through d = 10.

use crate::figures::FigureCtx;
use crate::report::Table;
use crate::workload::RunScale;
use kdv_core::bandwidth::scott_gamma;
use kdv_core::kernel::Kernel;
use kdv_core::method::{make_evaluator, MethodKind, MethodParams};
use kdv_data::Dataset;
use kdv_index::KdTree;
use kdv_pca::Pca;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};
use std::time::Instant;

/// The dimensionality sweep.
pub const DIMS: [usize; 5] = [2, 4, 6, 8, 10];

/// Methods plotted (SCAN is the paper's name for EXACT here).
pub const METHODS: [MethodKind; 4] = [
    MethodKind::Exact,
    MethodKind::Akde,
    MethodKind::Karl,
    MethodKind::Quad,
];

const EPS: f64 = 0.01;

/// Number of KDE queries measured per cell.
fn query_count(scale: &RunScale) -> usize {
    if scale.n_frac >= 0.005 {
        200
    } else {
        50
    }
}

/// Runs both panels.
pub fn run(ctx: &FigureCtx) -> Vec<Table> {
    let mut tables = Vec::new();
    for ds in [Dataset::Home, Dataset::Hep] {
        let n = ctx.scale.dataset_size(ds);
        let full = ds.generate_highdim(n, 10, ctx.seed);
        let pca = Pca::fit(&full);
        let mut t = Table::new(
            format!(
                "Fig 24 ({}) — KDE throughput [queries/s] vs dimensionality, n = {n}",
                ds.name()
            ),
            &["d", "SCAN", "aKDE", "KARL", "QUAD"],
        );
        let n_queries = query_count(&ctx.scale);
        for d in DIMS {
            let mut pts = pca.transform(&full, d);
            pts.scale_weights(1.0 / pts.len() as f64);
            let kernel = Kernel::gaussian(scott_gamma(&pts).gamma);
            let tree = KdTree::build_default(&pts);

            // Queries drawn uniformly from the projected data's bounding
            // box (the KDE-workload analogue of pixel centers).
            let bbox = kdv_geom::Mbr::of_set(&pts).expect("non-empty");
            let mut rng = StdRng::seed_from_u64(ctx.seed ^ d as u64);
            let queries: Vec<Vec<f64>> = (0..n_queries)
                .map(|_| {
                    (0..d)
                        .map(|j| rng.gen_range(bbox.lo()[j]..=bbox.hi()[j]))
                        .collect()
                })
                .collect();

            let mut row = vec![format!("{d}")];
            for m in METHODS {
                let mut ev = make_evaluator(m, &tree, kernel, "εKDV", &MethodParams::default())
                    .expect("Gaussian εKDV method");
                let start = Instant::now();
                for q in &queries {
                    std::hint::black_box(ev.eval_eps(q, EPS));
                }
                let elapsed = start.elapsed().as_secs_f64();
                row.push(format!("{:.1}", n_queries as f64 / elapsed.max(1e-12)));
            }
            t.push_row(row);
        }
        let _ = t.save_tsv(&ctx.out_dir, &format!("fig24_{}", ds.name()));
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_sweeps_dimensions() {
        let tables = run(&FigureCtx::smoke());
        assert_eq!(tables.len(), 2);
        for t in &tables {
            assert_eq!(t.len(), DIMS.len());
        }
    }
}

//! Fig 20: average relative error of the progressive visualization
//! framework after time budgets t ∈ {0.01, 0.05, 0.25, 1.25, 6.25} s,
//! for EXACT, aKDE, KARL, QUAD and Z-Order, on all four datasets.
//!
//! Paper expectation: under the same budget QUAD evaluates the most
//! pixels and thus shows the lowest error at every timestamp; all
//! curves fall with t.

use crate::figures::FigureCtx;
use crate::report::Table;
use crate::workload::Workload;
use kdv_core::kernel::KernelType;
use kdv_core::method::MethodKind;
use kdv_data::Dataset;
use kdv_viz::render::{render_eps, render_eps_progressive};
use std::time::Duration;

/// The paper's five timestamps (seconds).
pub const BUDGETS_S: [f64; 5] = [0.01, 0.05, 0.25, 1.25, 6.25];

/// Methods compared in Fig 20.
pub const METHODS: [MethodKind; 5] = [
    MethodKind::Exact,
    MethodKind::Akde,
    MethodKind::Karl,
    MethodKind::Quad,
    MethodKind::ZOrder,
];

const EPS: f64 = 0.01;

/// Runs the figure.
pub fn run(ctx: &FigureCtx) -> Vec<Table> {
    let mut tables = Vec::new();
    for ds in Dataset::ALL {
        let w = Workload::build(ds, KernelType::Gaussian, &ctx.scale, (1280, 960), ctx.seed);
        let mut exact_ev = w.evaluator_eps(MethodKind::Exact, EPS).expect("exact");
        let truth = render_eps(&mut *exact_ev, &w.raster, EPS);

        let mut t = Table::new(
            format!(
                "Fig 20 ({}) — progressive avg relative error vs budget",
                ds.name()
            ),
            &["t_sec", "EXACT", "aKDE", "KARL", "QUAD", "Z-order"],
        );
        for budget in BUDGETS_S {
            let mut row = vec![format!("{budget}")];
            for m in METHODS {
                let mut ev = w.evaluator_eps(m, EPS).expect("εKDV method");
                let out = render_eps_progressive(
                    &mut *ev,
                    &w.raster,
                    EPS,
                    Some(Duration::from_secs_f64(budget)),
                );
                row.push(format!("{:.4e}", out.grid.mean_relative_error(&truth)));
            }
            t.push_row(row);
        }
        let _ = t.save_tsv(
            &ctx.out_dir,
            &format!("fig20_{}", ds.name().replace(' ', "_")),
        );
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_error_is_not_worse_than_exact_scan_at_first_budget() {
        // One dataset at smoke scale to keep runtime tiny.
        let ctx = FigureCtx::smoke();
        let w = Workload::build(
            Dataset::Crime,
            KernelType::Gaussian,
            &ctx.scale,
            (1280, 960),
            ctx.seed,
        );
        let mut exact_ev = w.evaluator_eps(MethodKind::Exact, EPS).expect("exact");
        let truth = render_eps(&mut *exact_ev, &w.raster, EPS);

        // QUAD evaluates at least as many pixels per unit time. The
        // 10 ms budgets race against OS scheduling noise, so allow a
        // few attempts before declaring the ordering violated.
        let budget = Some(Duration::from_millis(10));
        let mut last = (0, 0);
        let ok = (0..5).any(|_| {
            let mut quad = w.evaluator_eps(MethodKind::Quad, EPS).expect("quad");
            let qo = render_eps_progressive(&mut *quad, &w.raster, EPS, budget);
            let mut exact = w.evaluator_eps(MethodKind::Exact, EPS).expect("exact");
            let eo = render_eps_progressive(&mut *exact, &w.raster, EPS, budget);
            let qe = qo.grid.mean_relative_error(&truth);
            assert!(qe.is_finite());
            last = (qo.evaluated, eo.evaluated);
            qo.evaluated >= eo.evaluated
        });
        assert!(ok, "QUAD evaluated {} < EXACT {}", last.0, last.1);
    }
}

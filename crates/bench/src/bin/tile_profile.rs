//! Quick A/B profile of the cold-tile hot path: per-pixel vs
//! tile-batched refinement on one raster, with the work counters that
//! explain the wall time. A tuning aid for the batched engine's
//! constants, not a committed sidecar.
//!
//! ```text
//! cargo run --release -p kdv-bench --bin tile_profile [-- z [points]]
//! ```

use std::time::Instant;

use kdv_core::bandwidth::scott_gamma;
use kdv_core::bounds::BoundFamily;
use kdv_core::engine::{RefineEvaluator, RenderBudget, TileEvaluator};
use kdv_core::kernel::Kernel;
use kdv_core::raster::RasterSpec;
use kdv_data::Dataset;
use kdv_index::KdTree;

const TILE: u32 = 128;

fn main() {
    let z: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let n: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let mut points = Dataset::Crime.generate(n, 11);
    points.scale_weights(1.0 / points.len() as f64);
    let kernel = Kernel::gaussian(scott_gamma(&points).gamma);
    let tree = KdTree::build_default(&points);
    let base = RasterSpec::covering(&points, TILE, TILE, 0.05);
    // A z-level tile: the base window shrunk 2^z times (top-left tile,
    // which on the crime scatter holds real density).
    let side = 1u32 << z;
    let ((x0, x1), (y0, y1)) = base.window();
    let w = (x1 - x0) / side as f64;
    let h = (y1 - y0) / side as f64;
    let tx = side / 2;
    let ty = side / 2;
    let raster = RasterSpec::new(
        TILE,
        TILE,
        (x0 + tx as f64 * w, x0 + (tx + 1) as f64 * w),
        (y0 + ty as f64 * h, y0 + (ty + 1) as f64 * h),
    );
    let eps = 0.1;

    for family in [BoundFamily::Quadratic] {
        // Per-pixel baseline.
        let mut ev = RefineEvaluator::new(&tree, kernel, family);
        let started = Instant::now();
        let mut pops = 0u64;
        let mut bounds = 0u64;
        let mut pevals = 0u64;
        for row in 0..TILE {
            for col in 0..TILE {
                let q = raster.pixel_center(col, row);
                let _ = ev.eval_eps(&q, eps);
                let s = ev.last_stats();
                pops += s.iterations as u64;
                bounds += s.node_bounds as u64;
                pevals += s.point_evals as u64;
            }
        }
        let per_pixel_ms = started.elapsed().as_secs_f64() * 1e3;
        println!(
            "z={z} {family:?} per-pixel : {per_pixel_ms:7.1} ms  pops {pops:>9}  bounds {bounds:>9}  pevals {pevals:>10}"
        );

        // Batched.
        let mut tev = TileEvaluator::new(&tree, kernel, family);
        let started = Instant::now();
        let mut budget = RenderBudget::unlimited();
        let tile = tev.eval_tile_eps(&raster, eps, &mut budget);
        let batched_ms = started.elapsed().as_secs_f64() * 1e3;
        let (mut pops, mut bounds, mut pevals, mut reuse) = (0u64, 0u64, 0u64, 0u64);
        for s in &tile.stats {
            pops += s.iterations as u64;
            bounds += s.node_bounds as u64;
            pevals += s.point_evals as u64;
            reuse += s.frontier_reuse as u64;
        }
        let sh = tev.shared_stats();
        println!(
            "z={z} {family:?} batched   : {batched_ms:7.1} ms  pops {pops:>9}  bounds {bounds:>9}  pevals {pevals:>10}  reuse {reuse}  shared(pops {} bounds {})  speedup {:.2}x",
            sh.iterations, sh.node_bounds,
            per_pixel_ms / batched_ms
        );
    }
}

//! Serving-latency baseline: cold vs. cached tile fetches, plus the
//! snapshot cold-start comparison.
//!
//! Starts an in-process [`TileServer`] on an emulated crime dataset,
//! fetches every εKDV tile at z ∈ {0, 2, 4} twice over real sockets —
//! the first pass renders (cold), the second is served from the LRU
//! cache — and writes per-level latency histograms (p50/p99/mean) to
//! `BENCH_serve.json`. A second section times the cold start on a
//! 1M-point synthetic dataset two ways: booting the server from CSV
//! (`cold_start_ms_build`) versus from a KDVS snapshot catalog
//! (`cold_start_ms_load`), with the bare index-acquisition cost
//! (`index_ms_*`) and the first-tile latency of each serving mode
//! reported alongside. A third section measures the request-tracing
//! tax on cached tiles (tracing off vs. on, same warmed level) so the
//! <5% cached-p99 overhead contract stays pinned in the sidecar. A
//! fourth section benches the cluster tier: cold-pyramid and cached
//! throughput behind the router at 1/2/4 shards, aggregate-cache
//! scaling under a deliberately tight per-shard budget, and the
//! router's proxy overhead on cached tiles. A fifth section proves
//! the coreset-pyramid claim: z0–z4 cold tiles on the 1M-point
//! dataset served from a certified ladder vs. the full index at
//! identical ε, with a 20k-point full-index baseline as the
//! "small-dataset cost" yardstick.
//! Later PRs diff this sidecar to catch serving regressions.
//!
//! ```text
//! cargo run --release -p kdv-bench --bin serve_bench [-- out.json]
//! ```
//!
//! A sixth section isolates the cold-render hot path itself: every
//! εKDV and τKDV tile at z ∈ {0, 2, 4} rendered once per engine mode —
//! scalar per-pixel, SIMD per-pixel, and SIMD + tile-batched frontier
//! refinement — so the sidecar pins the per-mode cold p99 and the
//! scalar→batched speedup the perf work claims, together with the
//! host's core count and SIMD capability (the numbers are meaningless
//! without them).
//!
//! Set `KDV_BENCH_COLD_POINTS` to shrink the cold-start dataset for
//! quick local runs (the committed sidecar uses the full 1M). Set
//! `KDV_BENCH_FAST=1` to run only the cached-level and cold-path
//! sections — the CI perf smoke uses this to check the cold-tile p99
//! against the committed sidecar without paying for the 1M-point
//! sections.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::Instant;

use kdv_cluster::{Router, RouterConfig};
use kdv_core::bandwidth::scott_gamma;
use kdv_core::kernel::Kernel;
use kdv_data::Dataset;
use kdv_index::KdTree;
use kdv_pyramid::{geometric_ladder, PyramidBuilder, PyramidConfig};
use kdv_server::{ServerConfig, TileServer};
use kdv_store::{FsyncPolicy, SnapshotWriter};
use kdv_telemetry::json::{self, Value};
use kdv_telemetry::LogHistogram;

const POINTS: usize = 20_000;
const COLD_POINTS: usize = 1_000_000;
const SEED: u64 = 11;
const TILE_SIZE: u32 = 128;
const LEVELS: [u8; 3] = [0, 2, 4];

fn fetch(addr: SocketAddr, path: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").as_bytes())
        .expect("request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("response");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head");
    let head = std::str::from_utf8(&raw[..head_end]).expect("UTF-8 head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, raw[head_end + 4..].to_vec())
}

fn hist_json(h: &LogHistogram) -> Value {
    Value::obj(vec![
        ("count", json::num_u(h.count())),
        ("mean_us", json::num_f(h.mean() / 1e3)),
        ("p50_le_us", json::num_f(h.quantile_le(0.5) as f64 / 1e3)),
        ("p99_le_us", json::num_f(h.quantile_le(0.99) as f64 / 1e3)),
        ("max_us", json::num_f(h.max() as f64 / 1e3)),
    ])
}

/// Cold start of `kdv serve`, measured both ways on the same dataset.
///
/// `cold_start_ms_build` is invocation → ready-to-serve for the CSV
/// path: parse, sanitize, Scott bandwidth, kd-tree with QUAD moments,
/// color-scale warm — everything `TileServer::start` finishes before
/// binding. `cold_start_ms_load` is the same span for
/// `TileServer::start_with_store`, whose catalog defers dataset
/// materialization to first touch. So that the deferred work is not
/// hidden, the sidecar also carries `index_ms_{build,load}` — the
/// index-acquisition cost alone (CSV rebuild vs `Snapshot::open`),
/// timed on the main thread — and `first_tile_ms_{build,load}`, the
/// first tile over a real socket in each mode (in store mode that
/// request pays the lazy snapshot load + warm).
fn cold_start(tmp: &Path) -> Value {
    let n = std::env::var("KDV_BENCH_COLD_POINTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(COLD_POINTS);
    let mut points = Dataset::Crime.generate(n, SEED);
    points.scale_weights(1.0 / points.len() as f64);
    let kernel = Kernel::gaussian(scott_gamma(&points).gamma);

    let csv_path = tmp.join("cold.csv");
    kdv_data::csv::save(&csv_path, &points, false).expect("write csv");
    let store_dir = tmp.join("store");
    std::fs::create_dir_all(&store_dir).expect("mkdir store");
    let snap_path = store_dir.join("cold.kdvs");
    let tree = KdTree::build_default(&points);
    SnapshotWriter::new(&tree, kernel)
        .write_to(&snap_path)
        .expect("write snapshot");
    drop(tree);
    drop(points);

    // Index acquisition alone, main thread, page-warm files: the
    // snapshot's head-to-head against the CSV rebuild it replaces.
    let start = Instant::now();
    let snap = kdv_store::Snapshot::open(&snap_path).expect("open snapshot");
    let index_load = start.elapsed().as_secs_f64() * 1e3;
    let snap_nodes = snap.tree.num_nodes();
    drop(snap);

    let start = Instant::now();
    let mut pts = kdv_data::csv::load(&csv_path, 2, false).expect("load csv");
    kdv_data::sanitize::validate(&pts).expect("sanitize");
    pts.scale_weights(1.0 / pts.len() as f64);
    std::hint::black_box(Kernel::gaussian(scott_gamma(&pts).gamma));
    let built = KdTree::build_default(&pts);
    let index_build = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(snap_nodes, built.num_nodes(), "same index both ways");
    drop(built);
    drop(pts);

    // Boot to ready-to-serve, then the first tile, in each mode. A
    // coarse ε and small tiles keep the (identical) render cheap.
    let config = ServerConfig {
        tile_size: 64,
        max_z: 2,
        eps: 0.2,
        workers: 4,
        ..ServerConfig::default()
    };
    let start = Instant::now();
    let mut pts = kdv_data::csv::load(&csv_path, 2, false).expect("load csv");
    kdv_data::sanitize::validate(&pts).expect("sanitize");
    pts.scale_weights(1.0 / pts.len() as f64);
    let k = Kernel::gaussian(scott_gamma(&pts).gamma);
    let server = TileServer::start(config.clone(), &pts, k).expect("server start (build)");
    let ms_build = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let (status, body) = fetch(server.local_addr(), "/tiles/eps/0/0/0.png");
    let tile_build = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(status, 200, "build-path tile");
    assert!(body.starts_with(b"\x89PNG"), "build-path tile: not a PNG");
    server.stop();
    drop(pts);

    let start = Instant::now();
    let server = TileServer::start_with_store(config, &store_dir).expect("server start (load)");
    let ms_load = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let (status, body) = fetch(server.local_addr(), "/tiles/cold/eps/0/0/0.png");
    let tile_load = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(status, 200, "load-path tile");
    assert!(body.starts_with(b"\x89PNG"), "load-path tile: not a PNG");
    server.stop();

    println!(
        "cold start ({n} points): CSV boot {ms_build:.0} ms vs snapshot boot {ms_load:.1} ms \
         ({:.0}x); index alone {index_build:.0} ms rebuilt / {index_load:.0} ms loaded \
         ({:.1}x); first tile {tile_build:.0} ms / {tile_load:.0} ms",
        ms_build / ms_load,
        index_build / index_load,
    );
    Value::obj(vec![
        ("points", json::num_u(n as u64)),
        ("cold_start_ms_build", json::num_f(ms_build)),
        ("cold_start_ms_load", json::num_f(ms_load)),
        ("speedup", json::num_f(ms_build / ms_load)),
        ("index_ms_build", json::num_f(index_build)),
        ("index_ms_load", json::num_f(index_load)),
        ("first_tile_ms_build", json::num_f(tile_build)),
        ("first_tile_ms_load", json::num_f(tile_load)),
    ])
}

/// The tracing tax on the hot path, measured where it matters: cached
/// tiles, where per-request work is a hash lookup plus a socket write
/// and any fixed overhead is proportionally largest. Two identical
/// servers — tracing off vs. on — serve the same warmed z=2 level;
/// the sidecar records both distributions and the p50/p99 deltas. The
/// serving contract (ISSUE: observability) allows cached p99 to
/// regress at most 5% with tracing enabled.
fn trace_overhead() -> Value {
    const ROUNDS: usize = 64;
    const Z: u32 = 2;
    let mut points = Dataset::Crime.generate(POINTS, SEED);
    points.scale_weights(1.0 / points.len() as f64);
    let kernel = Kernel::gaussian(scott_gamma(&points).gamma);

    // Both servers live at once, samples interleaved per tile, so
    // scheduler and allocator drift hits both modes identically: any
    // consistent gap is the tracing tax, not warmup order.
    let servers: Vec<TileServer> = [false, true]
        .into_iter()
        .map(|trace| {
            let config = ServerConfig {
                tile_size: TILE_SIZE,
                max_z: Z as u8,
                eps: 0.1,
                workers: 4,
                trace,
                ..ServerConfig::default()
            };
            TileServer::start(config, &points, kernel).expect("server start")
        })
        .collect();
    let mut hists = [LogHistogram::new(), LogHistogram::new()];
    for round in 0..=ROUNDS {
        for x in 0..1u32 << Z {
            for y in 0..1u32 << Z {
                let path = format!("/tiles/eps/{Z}/{x}/{y}.png");
                for (slot, server) in servers.iter().enumerate() {
                    let start = Instant::now();
                    let (status, _) = fetch(server.local_addr(), &path);
                    let ns = start.elapsed().as_nanos() as u64;
                    assert_eq!(status, 200, "{path} (traced={})", slot == 1);
                    if round > 0 {
                        // Round 0 renders; only cached fetches count.
                        hists[slot].record(ns);
                    }
                }
            }
        }
    }
    for server in servers {
        server.stop();
    }

    let pct = |on: f64, off: f64| (on - off) / off * 100.0;
    let mean_pct = pct(hists[1].mean(), hists[0].mean());
    let p50_pct = pct(
        hists[1].quantile_le(0.5) as f64,
        hists[0].quantile_le(0.5) as f64,
    );
    let p99_pct = pct(
        hists[1].quantile_le(0.99) as f64,
        hists[0].quantile_le(0.99) as f64,
    );
    println!(
        "cached-tile tracing overhead: mean {:+.1}% (exact), p50 {:+.1}%, p99 {:+.1}% \
         ({} samples per mode; quantiles carry ≤6.25% bucket error)",
        mean_pct,
        p50_pct,
        p99_pct,
        ROUNDS * (1 << Z) * (1 << Z),
    );
    Value::obj(vec![
        ("untraced", hist_json(&hists[0])),
        ("traced", hist_json(&hists[1])),
        ("mean_overhead_pct", json::num_f(mean_pct)),
        ("p50_overhead_pct", json::num_f(p50_pct)),
        ("p99_overhead_pct", json::num_f(p99_pct)),
    ])
}

fn post(addr: SocketAddr, path: &str, body: &str) -> u16 {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!(
                "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("response");
    std::str::from_utf8(&raw)
        .expect("UTF-8 head")
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status")
}

/// Streaming-ingest latency: durable-ack distribution under each
/// fsync policy (four concurrent writers, so `batch` group commit has
/// something to amortize over), tile latency while a write storm
/// churns compactions underneath the readers, and the WAL replay cost
/// a crash recovery pays, normalized per MiB.
fn ingest_bench(tmp: &Path) -> Value {
    const WRITERS: usize = 4;
    const WRITES: usize = 150; // per writer, per mode
    let mut base = Dataset::Crime.generate(POINTS / 4, SEED);
    base.scale_weights(1.0 / base.len() as f64);
    let kernel = Kernel::gaussian(scott_gamma(&base).gamma);
    let tree = KdTree::build_default(&base);
    let anchor = base.point(10);
    let (ax, ay) = (anchor[0], anchor[1]);

    let spawn_writers = |addr: SocketAddr, writes: usize| {
        let hist = std::sync::Arc::new(std::sync::Mutex::new(LogHistogram::new()));
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let hist = std::sync::Arc::clone(&hist);
                std::thread::spawn(move || {
                    for i in 0..writes {
                        let body = format!(
                            "{{\"append\":[[{},{},0.0001]]}}",
                            ax + 0.001 * (w * writes + i) as f64,
                            ay
                        );
                        let start = Instant::now();
                        let status = post(addr, "/datasets/crime/points", &body);
                        let ns = start.elapsed().as_nanos() as u64;
                        assert_eq!(status, 200, "ingest ack");
                        hist.lock().expect("ack histogram").record(ns);
                    }
                })
            })
            .collect();
        (hist, handles)
    };

    let mut modes = Vec::new();
    for (name, fsync) in [("every", FsyncPolicy::Every), ("batch", FsyncPolicy::Batch)] {
        let dir = tmp.join(format!("ingest-{name}"));
        std::fs::create_dir_all(&dir).expect("mkdir ingest store");
        SnapshotWriter::new(&tree, kernel)
            .write_to(dir.join("crime.kdvs"))
            .expect("write snapshot");
        let config = ServerConfig {
            tile_size: 64,
            max_z: 2,
            eps: 0.2,
            workers: WRITERS + 1,
            fsync,
            // Acks only in this section: keep compaction out of it.
            memtable_points: 1 << 16,
            compact_points: 1 << 16,
            ..ServerConfig::default()
        };
        let server = TileServer::start_with_store(config, &dir).expect("server start (ingest)");
        let (hist, handles) = spawn_writers(server.local_addr(), WRITES);
        for h in handles {
            h.join().expect("writer thread");
        }
        server.stop();
        let hist = hist.lock().expect("ack histogram");

        // Crash-recovery tax: replay the WAL this storm left behind.
        let wal_path = dir.join("crime.wal");
        let wal_bytes = std::fs::metadata(&wal_path).expect("WAL metadata").len();
        let start = Instant::now();
        let replay = kdv_store::wal::replay(&wal_path).expect("replay");
        let replay_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(replay.records.len(), WRITERS * WRITES, "all acks replay");
        let replay_ms_per_mb = replay_ms / (wal_bytes as f64 / (1 << 20) as f64);
        println!(
            "ingest fsync={name}: ack p50 {:.2} ms, p99 {:.2} ms ({} acks); \
             replay {replay_ms:.2} ms for {wal_bytes} WAL bytes ({replay_ms_per_mb:.1} ms/MiB)",
            hist.quantile_le(0.5) as f64 / 1e6,
            hist.quantile_le(0.99) as f64 / 1e6,
            hist.count(),
        );
        modes.push(Value::obj(vec![
            ("fsync", Value::Str(name.to_string())),
            ("ack", hist_json(&hist)),
            ("wal_bytes", json::num_u(wal_bytes)),
            ("replay_ms", json::num_f(replay_ms)),
            ("replay_ms_per_mb", json::num_f(replay_ms_per_mb)),
        ]));
    }

    // Reads under churn: a batch-mode write storm with an aggressive
    // compaction threshold, while a reader hammers the warmed z=1
    // level. Tile latency here pays delta merges, cache invalidation,
    // and base swaps — the worst sustained case for a reader.
    let dir = tmp.join("ingest-churn");
    std::fs::create_dir_all(&dir).expect("mkdir churn store");
    SnapshotWriter::new(&tree, kernel)
        .write_to(dir.join("crime.kdvs"))
        .expect("write snapshot");
    let config = ServerConfig {
        tile_size: 64,
        max_z: 2,
        eps: 0.2,
        workers: WRITERS + 2,
        fsync: FsyncPolicy::Batch,
        compact_points: 128,
        ..ServerConfig::default()
    };
    let server = TileServer::start_with_store(config, &dir).expect("server start (churn)");
    let addr = server.local_addr();
    for x in 0..2u32 {
        for y in 0..2u32 {
            let (status, _) = fetch(addr, &format!("/tiles/crime/eps/1/{x}/{y}.png"));
            assert_eq!(status, 200, "warm tile");
        }
    }
    let (_, writers) = spawn_writers(addr, 1500);
    let mut tiles = LogHistogram::new();
    let mut writers_done = false;
    while !writers_done {
        for x in 0..2u32 {
            for y in 0..2u32 {
                let path = format!("/tiles/crime/eps/1/{x}/{y}.png");
                let start = Instant::now();
                let (status, _) = fetch(addr, &path);
                tiles.record(start.elapsed().as_nanos() as u64);
                assert_eq!(status, 200, "{path} under churn");
            }
        }
        writers_done = writers.iter().all(|h| h.is_finished());
    }
    for h in writers {
        h.join().expect("writer thread");
    }
    server.stop();
    println!(
        "tiles under ingest+compaction churn: p50 {:.2} ms, p99 {:.2} ms ({} fetches)",
        tiles.quantile_le(0.5) as f64 / 1e6,
        tiles.quantile_le(0.99) as f64 / 1e6,
        tiles.count(),
    );
    Value::obj(vec![
        ("modes", Value::Arr(modes)),
        ("tile_under_churn", hist_json(&tiles)),
    ])
}

/// Concurrent pyramid sweep through `addr`: `clients` threads drain a
/// shared tile work-list; returns wall seconds and the merged per-tile
/// latency histogram (plus total encoded bytes moved).
fn sweep(
    addr: SocketAddr,
    paths: &std::sync::Arc<Vec<String>>,
    clients: usize,
) -> (f64, LogHistogram, u64) {
    let next = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let paths = std::sync::Arc::clone(paths);
            let next = std::sync::Arc::clone(&next);
            std::thread::spawn(move || {
                let mut hist = LogHistogram::new();
                let mut bytes = 0u64;
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(path) = paths.get(i) else { break };
                    let start = Instant::now();
                    let (status, body) = fetch(addr, path);
                    hist.record(start.elapsed().as_nanos() as u64);
                    assert_eq!(status, 200, "{path}");
                    bytes += body.len() as u64;
                }
                (hist, bytes)
            })
        })
        .collect();
    let mut hist = LogHistogram::new();
    let mut bytes = 0u64;
    for h in handles {
        let (part, b) = h.join().expect("sweep client");
        hist.merge(&part);
        bytes += b;
    }
    (started.elapsed().as_secs_f64(), hist, bytes)
}

/// Scale-out: the same 20k crime store behind a router with 1, 2, and
/// 4 shards.
///
/// Three measurements per fleet size:
///
/// * `cold` — full z≤3 εKDV pyramid, every tile rendered once. This
///   is CPU-bound, so the scaling it shows is bounded by the host's
///   core count (`host_cores` is recorded alongside: on a 1-core box
///   the expected scaling is ~1×, and the number is still worth
///   pinning to catch router-layer regressions).
/// * `cached` — the same sweep warm: every tile a shard-cache hit,
///   measuring the proxy path itself under concurrency.
/// * `cache_pressure` — the capacity win that scales on any host: the
///   per-shard cache budget is set to ~60% of the pyramid's bytes, so
///   one shard thrashes its LRU on every sweep while two or more hold
///   the whole pyramid in aggregate (rendezvous partitioning means no
///   tile is cached twice). Steady-state sweep throughput is the
///   metric the 1→2 shard scaling floor is checked against.
///
/// `router_overhead` pins the proxy tax: cached-tile p50 direct to a
/// shard vs. through the router (target: ≤ 1 ms added).
fn cluster_bench(tmp: &Path) -> Value {
    const MAX_Z: u8 = 3;
    const CLIENTS: usize = 4;
    const FLEETS: [usize; 3] = [1, 2, 4];

    let dir = tmp.join("cluster-store");
    std::fs::create_dir_all(&dir).expect("mkdir cluster store");
    let mut points = Dataset::Crime.generate(POINTS, SEED);
    points.scale_weights(1.0 / points.len() as f64);
    let kernel = Kernel::gaussian(scott_gamma(&points).gamma);
    let tree = KdTree::build_default(&points);
    SnapshotWriter::new(&tree, kernel)
        .write_to(dir.join("crime.kdvs"))
        .expect("write snapshot");
    drop(tree);
    drop(points);

    let mut paths = Vec::new();
    for z in 0..=MAX_Z {
        let side = 1u32 << z;
        for x in 0..side {
            for y in 0..side {
                paths.push(format!("/tiles/crime/eps/{z}/{x}/{y}.png"));
            }
        }
    }
    let paths = std::sync::Arc::new(paths);
    let tiles = paths.len() as f64;

    let start_fleet = |n: usize, cache_bytes: usize| -> (Vec<TileServer>, Router) {
        let shards: Vec<TileServer> = (0..n)
            .map(|_| {
                let config = ServerConfig {
                    tile_size: TILE_SIZE,
                    max_z: MAX_Z,
                    eps: 0.1,
                    workers: 4,
                    cache_bytes,
                    cache_shards: 1,
                    ..ServerConfig::default()
                };
                TileServer::start_with_store(config, &dir).expect("start shard")
            })
            .collect();
        let router = Router::start(RouterConfig {
            shards: shards.iter().map(|s| s.local_addr().to_string()).collect(),
            ..RouterConfig::default()
        })
        .expect("start router");
        (shards, router)
    };

    let mut fleets = Vec::new();
    let mut cold_rates = Vec::new();
    let mut pyramid_bytes = 0u64;
    for n in FLEETS {
        let (shards, router) = start_fleet(n, 64 << 20);
        let addr = router.local_addr();
        let (cold_secs, cold_hist, bytes) = sweep(addr, &paths, CLIENTS);
        pyramid_bytes = bytes;
        let (warm_secs, warm_hist, _) = sweep(addr, &paths, CLIENTS);
        let cold_rate = tiles / cold_secs;
        cold_rates.push(cold_rate);
        println!(
            "cluster {n} shard(s): cold {cold_rate:.1} tiles/s (p50 {:.2} ms, p99 {:.2} ms); \
             cached {:.0} tiles/s (p50 {:.3} ms, p99 {:.3} ms)",
            cold_hist.quantile_le(0.5) as f64 / 1e6,
            cold_hist.quantile_le(0.99) as f64 / 1e6,
            tiles / warm_secs,
            warm_hist.quantile_le(0.5) as f64 / 1e6,
            warm_hist.quantile_le(0.99) as f64 / 1e6,
        );
        fleets.push(Value::obj(vec![
            ("shards", json::num_u(n as u64)),
            ("cold_tiles_per_s", json::num_f(cold_rate)),
            ("cold", hist_json(&cold_hist)),
            ("cached_tiles_per_s", json::num_f(tiles / warm_secs)),
            ("cached", hist_json(&warm_hist)),
        ]));
        router.stop();
        for s in shards {
            s.stop();
        }
    }

    // Aggregate-cache capacity: per-shard budget ~60% of the pyramid,
    // so only fleets of ≥ 2 shards hold it all. Steady state = the
    // mean of three post-cold sweeps.
    let budget = (pyramid_bytes as usize * 6 / 10).max(1 << 16);
    let mut pressure = Vec::new();
    let mut pressure_rates = Vec::new();
    for n in FLEETS {
        let (shards, router) = start_fleet(n, budget);
        let addr = router.local_addr();
        let _ = sweep(addr, &paths, CLIENTS); // cold fill
        let mut secs = 0.0;
        let mut hist = LogHistogram::new();
        for _ in 0..3 {
            let (s, h, _) = sweep(addr, &paths, CLIENTS);
            secs += s;
            hist.merge(&h);
        }
        let rate = 3.0 * tiles / secs;
        pressure_rates.push(rate);
        println!(
            "cache pressure ({} byte budget/shard), {n} shard(s): {rate:.0} tiles/s \
             (p50 {:.3} ms, p99 {:.2} ms)",
            budget,
            hist.quantile_le(0.5) as f64 / 1e6,
            hist.quantile_le(0.99) as f64 / 1e6,
        );
        pressure.push(Value::obj(vec![
            ("shards", json::num_u(n as u64)),
            ("tiles_per_s", json::num_f(rate)),
            ("tile", hist_json(&hist)),
        ]));
        router.stop();
        for s in shards {
            s.stop();
        }
    }

    // Proxy tax on cached tiles: one shard, warm z=3 level, p50 direct
    // vs. through the router.
    let (shards, router) = start_fleet(1, 64 << 20);
    let shard_addr = shards[0].local_addr();
    let routed_addr = router.local_addr();
    let z3: Vec<&String> = paths.iter().filter(|p| p.contains("/3/")).collect();
    for path in &z3 {
        let (status, _) = fetch(shard_addr, path);
        assert_eq!(status, 200, "warm {path}");
    }
    let mut direct = LogHistogram::new();
    let mut routed = LogHistogram::new();
    for _ in 0..8 {
        for path in &z3 {
            let start = Instant::now();
            let (status, _) = fetch(shard_addr, path);
            direct.record(start.elapsed().as_nanos() as u64);
            assert_eq!(status, 200);
            let start = Instant::now();
            let (status, _) = fetch(routed_addr, path);
            routed.record(start.elapsed().as_nanos() as u64);
            assert_eq!(status, 200);
        }
    }
    router.stop();
    for s in shards {
        s.stop();
    }
    let direct_p50_us = direct.quantile_le(0.5) as f64 / 1e3;
    let routed_p50_us = routed.quantile_le(0.5) as f64 / 1e3;
    println!(
        "router proxy overhead on cached tiles: p50 {direct_p50_us:.0} µs direct \
         → {routed_p50_us:.0} µs routed (+{:.0} µs)",
        routed_p50_us - direct_p50_us
    );

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    Value::obj(vec![
        ("host_cores", json::num_u(cores as u64)),
        ("max_z", json::num_u(MAX_Z as u64)),
        ("tiles", json::num_u(paths.len() as u64)),
        ("clients", json::num_u(CLIENTS as u64)),
        ("fleets", Value::Arr(fleets)),
        (
            "cold_scaling_1_to_2",
            json::num_f(cold_rates[1] / cold_rates[0]),
        ),
        (
            "cold_scaling_1_to_4",
            json::num_f(cold_rates[2] / cold_rates[0]),
        ),
        (
            "cache_pressure",
            Value::obj(vec![
                ("budget_bytes_per_shard", json::num_u(budget as u64)),
                ("pyramid_bytes", json::num_u(pyramid_bytes)),
                ("fleets", Value::Arr(pressure)),
                (
                    "scaling_1_to_2",
                    json::num_f(pressure_rates[1] / pressure_rates[0]),
                ),
                (
                    "scaling_1_to_4",
                    json::num_f(pressure_rates[2] / pressure_rates[0]),
                ),
            ]),
        ),
        (
            "router_overhead",
            Value::obj(vec![
                ("direct", hist_json(&direct)),
                ("routed", hist_json(&routed)),
                ("direct_p50_us", json::num_f(direct_p50_us)),
                ("routed_p50_us", json::num_f(routed_p50_us)),
                ("added_p50_us", json::num_f(routed_p50_us - direct_p50_us)),
            ]),
        ),
    ])
}

/// One GET that also surfaces the `X-Kdv-Level` header, so the sweep
/// can prove which index actually answered.
fn fetch_level(addr: SocketAddr, path: &str) -> (u16, Option<String>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").as_bytes())
        .expect("request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("response");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head");
    let head = std::str::from_utf8(&raw[..head_end]).expect("UTF-8 head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let level = head.lines().find_map(|l| {
        let (name, value) = l.split_once(':')?;
        name.trim()
            .eq_ignore_ascii_case("x-kdv-level")
            .then(|| value.trim().to_string())
    });
    (status, level, raw[head_end + 4..].to_vec())
}

/// The planet-scale claim, measured: z0–z4 cold εKDV tiles on the
/// ≥1M-point cold-start dataset, served three ways at identical ε —
/// from the certified coreset pyramid, from the full QUAD index, and
/// from a 20k-point baseline dataset (the "small-dataset cost" the
/// pyramid is supposed to match). Every tile is fetched exactly once
/// per server, so each histogram is pure render cost. The sidecar pins
/// the per-zoom level the picker chose, the full-index→pyramid p99
/// speedup (contract: ≥5× at z ≤ 4), and the pyramid-vs-baseline cost
/// ratio (target: within ~2×).
fn pyramid_bench(tmp: &Path) -> Value {
    const MAX_Z: u8 = 4;
    const BASELINE_POINTS: usize = 20_000;
    let n = std::env::var("KDV_BENCH_COLD_POINTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(COLD_POINTS);
    let mut points = Dataset::Crime.generate(n, SEED);
    points.scale_weights(1.0 / points.len() as f64);
    let kernel = Kernel::gaussian(scott_gamma(&points).gamma);
    let tree = KdTree::build_default(&points);
    let ladder = geometric_ladder(n);
    assert!(
        !ladder.is_empty(),
        "cold dataset too small for a pyramid; raise KDV_BENCH_COLD_POINTS to ≥ 4096"
    );
    let start = Instant::now();
    let (pyramid, report) = PyramidBuilder::new(&tree, kernel)
        .with_config(PyramidConfig {
            sizes: ladder.clone(),
            ..PyramidConfig::default()
        })
        .build()
        .expect("pyramid build");
    let build_ms = start.elapsed().as_secs_f64() * 1e3;

    let pyra_dir = tmp.join("pyra-store");
    std::fs::create_dir_all(&pyra_dir).expect("mkdir pyramid store");
    SnapshotWriter::new(&tree, kernel)
        .with_pyramid(
            pyramid
                .levels()
                .iter()
                .map(|lv| (lv.tree.points().clone(), lv.eps_s))
                .collect(),
        )
        .write_to(pyra_dir.join("crime.kdvs"))
        .expect("write pyramid snapshot");
    let full_dir = tmp.join("pyra-full");
    std::fs::create_dir_all(&full_dir).expect("mkdir full store");
    SnapshotWriter::new(&tree, kernel)
        .write_to(full_dir.join("crime.kdvs"))
        .expect("write full snapshot");
    let eps_s: Vec<f64> = pyramid.levels().iter().map(|lv| lv.eps_s).collect();
    drop(pyramid);
    drop(tree);
    drop(points);

    let base_dir = tmp.join("pyra-baseline");
    std::fs::create_dir_all(&base_dir).expect("mkdir baseline store");
    let mut base = Dataset::Crime.generate(BASELINE_POINTS, SEED);
    base.scale_weights(1.0 / base.len() as f64);
    let base_kernel = Kernel::gaussian(scott_gamma(&base).gamma);
    SnapshotWriter::new(&KdTree::build_default(&base), base_kernel)
        .write_to(base_dir.join("crime.kdvs"))
        .expect("write baseline snapshot");
    drop(base);

    // Identical serving config everywhere; preload so the lazy
    // snapshot load never pollutes the first tile's timing.
    let eps = 0.1;
    let start_server = |dir: &Path| {
        let config = ServerConfig {
            tile_size: 64,
            max_z: MAX_Z,
            pyramid_max_z: MAX_Z,
            eps,
            workers: 4,
            preload: true,
            ..ServerConfig::default()
        };
        let server = TileServer::start_with_store(config, dir).expect("start");
        while fetch(server.local_addr(), "/readyz").0 != 200 {
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        server
    };
    let servers = [
        ("pyramid", start_server(&pyra_dir)),
        ("full", start_server(&full_dir)),
        ("baseline", start_server(&base_dir)),
    ];

    let mut zooms = Vec::new();
    let mut speedups = Vec::new();
    let mut cost_ratios = Vec::new();
    for z in 0..=MAX_Z {
        let side = 1u32 << z;
        let mut hists = [
            LogHistogram::new(),
            LogHistogram::new(),
            LogHistogram::new(),
        ];
        let mut level = None;
        for x in 0..side {
            for y in 0..side {
                let path = format!("/tiles/crime/eps/{z}/{x}/{y}.png");
                for (slot, (name, server)) in servers.iter().enumerate() {
                    let start = Instant::now();
                    let (status, lvl, body) = fetch_level(server.local_addr(), &path);
                    let ns = start.elapsed().as_nanos() as u64;
                    assert_eq!(status, 200, "{name} {path}");
                    assert!(body.starts_with(b"\x89PNG"), "{name} {path}: not a PNG");
                    hists[slot].record(ns);
                    if slot == 0 {
                        let lvl = lvl.expect("level header");
                        assert_ne!(lvl, "full", "{path}: the picker must admit a level");
                        level = Some(lvl);
                    }
                }
            }
        }
        let level = level.expect("at least one tile per zoom");
        let p99 = |h: &LogHistogram| h.quantile_le(0.99) as f64;
        let p50 = |h: &LogHistogram| h.quantile_le(0.5) as f64;
        let speedup = p99(&hists[1]) / p99(&hists[0]);
        let cost_ratio = p50(&hists[0]) / p50(&hists[2]);
        speedups.push(speedup);
        cost_ratios.push(cost_ratio);
        println!(
            "pyramid z={z} (level {level}): cold p99 {:.2} ms vs full {:.2} ms ({speedup:.1}x); \
             baseline p50 ratio {cost_ratio:.2}",
            p99(&hists[0]) / 1e6,
            p99(&hists[1]) / 1e6,
        );
        zooms.push(Value::obj(vec![
            ("z", json::num_u(z as u64)),
            ("tiles", json::num_u((side * side) as u64)),
            ("level", Value::Str(level)),
            ("pyramid", hist_json(&hists[0])),
            ("full", hist_json(&hists[1])),
            ("baseline", hist_json(&hists[2])),
            ("p99_speedup", json::num_f(speedup)),
            ("baseline_p50_ratio", json::num_f(cost_ratio)),
        ]));
    }
    for (_, server) in servers {
        server.stop();
    }

    let min_speedup = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_ratio = cost_ratios.iter().cloned().fold(0.0, f64::max);
    println!(
        "pyramid on {n} points: build {build_ms:.0} ms, ladder {ladder:?}; \
         worst z≤{MAX_Z} p99 speedup {min_speedup:.1}x, \
         worst cost vs 20k baseline {max_ratio:.2}x"
    );
    Value::obj(vec![
        ("points", json::num_u(n as u64)),
        ("baseline_points", json::num_u(BASELINE_POINTS as u64)),
        ("eps", json::num_f(eps)),
        ("build_ms", json::num_f(build_ms)),
        (
            "ladder",
            Value::Arr(ladder.iter().map(|&s| json::num_u(s as u64)).collect()),
        ),
        (
            "eps_s",
            Value::Arr(eps_s.iter().map(|&e| json::num_f(e)).collect()),
        ),
        (
            "certified",
            Value::Arr(
                report
                    .levels
                    .iter()
                    .map(|lv| {
                        Value::obj(vec![
                            ("size", json::num_u(lv.size as u64)),
                            ("hoeffding_eps", json::num_f(lv.hoeffding_eps)),
                            ("measured_eps", json::num_f(lv.measured_eps)),
                            ("certified_eps", json::num_f(lv.certified_eps)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("zooms", Value::Arr(zooms)),
        ("p99_speedup_min", json::num_f(min_speedup)),
        ("baseline_p50_ratio_max", json::num_f(max_ratio)),
    ])
}

/// The cold-render hot path, isolated per engine mode.
///
/// Three servers over the same 20k crime dataset, started one at a
/// time (the SIMD switch is process-global, so modes must not
/// overlap): scalar per-pixel (`--no-simd --no-batch`), SIMD
/// per-pixel (`--no-batch`), and SIMD + tile-batched frontier
/// refinement (the serving default). Every εKDV and τKDV tile at
/// z ∈ {0, 2, 4} is fetched cold once per mode per round; a tile's
/// latency is the **minimum over rounds** (cold renders are
/// deterministic work, so the min is the run least polluted by
/// scheduler/clock drift on a shared host), and the histograms are
/// over the tile population. The headline `p99_speedup_batched` is
/// taken on the aggregate z ≤ 4 population — "cold-tile p99 at
/// z ≤ 4" — with per-zoom splits alongside. `host_cores` and the
/// SIMD capability fields are recorded because the absolute numbers
/// (and the SIMD column's meaning) depend on them.
fn cold_path() -> Value {
    let mut points = Dataset::Crime.generate(POINTS, SEED);
    points.scale_weights(1.0 / points.len() as f64);
    let kernel = Kernel::gaussian(scott_gamma(&points).gamma);
    const MODES: [(&str, bool, bool); 3] = [
        ("scalar", false, false),
        ("simd", true, false),
        ("simd_batched", true, true),
    ];

    // Modes are interleaved in rounds rather than run as one long phase
    // each: on a small shared host, clock/thermal drift over a
    // minutes-long phase would otherwise land entirely on whichever
    // mode ran last and corrupt the scalar→batched ratio. Per
    // (zoom, kind, tile, mode) the minimum latency over rounds is
    // kept — each fetch renders the identical deterministic workload,
    // so the min estimates the undisturbed cost and the spread across
    // *tiles* (the thing p99 is about) is preserved.
    let rounds: usize = if std::env::var("KDV_BENCH_FAST").is_ok() {
        2
    } else {
        3
    };
    // zoom → tile-fetch index → mode → best-of-rounds nanoseconds.
    let mut mins: Vec<Vec<[u64; 3]>> = LEVELS
        .iter()
        .map(|&z| vec![[u64::MAX; 3]; 2 * (1usize << z) * (1usize << z)])
        .collect();
    for _ in 0..rounds {
        for (slot, (name, simd, batch)) in MODES.into_iter().enumerate() {
            let config = ServerConfig {
                tile_size: TILE_SIZE,
                max_z: *LEVELS.iter().max().expect("levels"),
                eps: 0.1,
                workers: 4,
                simd,
                batch,
                ..ServerConfig::default()
            };
            let server = TileServer::start(config, &points, kernel).expect("server start");
            let addr = server.local_addr();
            for (zi, &z) in LEVELS.iter().enumerate() {
                let mut idx = 0usize;
                for kind in ["eps", "tau"] {
                    for x in 0..1u32 << z {
                        for y in 0..1u32 << z {
                            let path = format!("/tiles/{kind}/{z}/{x}/{y}.png");
                            let start = Instant::now();
                            let (status, body) = fetch(addr, &path);
                            let ns = start.elapsed().as_nanos() as u64;
                            assert_eq!(status, 200, "{path} ({name})");
                            assert!(body.starts_with(b"\x89PNG"), "{path}: not a PNG");
                            let slot_min = &mut mins[zi][idx][slot];
                            *slot_min = (*slot_min).min(ns);
                            idx += 1;
                        }
                    }
                }
            }
            server.stop();
        }
    }

    let mut hists: Vec<[LogHistogram; 3]> = LEVELS
        .iter()
        .map(|_| std::array::from_fn(|_| LogHistogram::new()))
        .collect();
    let mut all: [LogHistogram; 3] = std::array::from_fn(|_| LogHistogram::new());
    for (zi, tiles) in mins.iter().enumerate() {
        for t in tiles {
            for (slot, &ns) in t.iter().enumerate() {
                assert_ne!(ns, u64::MAX, "unrecorded tile sample");
                hists[zi][slot].record(ns);
                all[slot].record(ns);
            }
        }
    }

    let p99 = |h: &LogHistogram| h.quantile_le(0.99) as f64;
    let mut zooms = Vec::new();
    let mut speedups = Vec::new();
    for (zi, &z) in LEVELS.iter().enumerate() {
        let speedup = p99(&hists[zi][0]) / p99(&hists[zi][2]);
        speedups.push(speedup);
        println!(
            "cold path z={z}: scalar p99 {:.2} ms, simd p99 {:.2} ms, \
             simd+batched p99 {:.2} ms ({speedup:.1}x vs scalar)",
            p99(&hists[zi][0]) / 1e6,
            p99(&hists[zi][1]) / 1e6,
            p99(&hists[zi][2]) / 1e6,
        );
        let mut fields = vec![
            ("z", json::num_u(z as u64)),
            ("tiles", json::num_u(hists[zi][0].count())),
        ];
        for (slot, (name, _, _)) in MODES.into_iter().enumerate() {
            fields.push((name, hist_json(&hists[zi][slot])));
        }
        fields.push(("p99_speedup_batched", json::num_f(speedup)));
        zooms.push(Value::obj(fields));
    }
    let min_speedup = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let agg_speedup = p99(&all[0]) / p99(&all[2]);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max_z = *LEVELS.iter().max().expect("levels");
    println!(
        "cold path: z≤{max_z} cold-tile p99 scalar {:.2} ms → simd+batched {:.2} ms \
         ({agg_speedup:.1}x; worst single zoom {min_speedup:.1}x) \
         ({cores} core(s), simd {})",
        p99(&all[0]) / 1e6,
        p99(&all[2]) / 1e6,
        if kdv_geom::simd::simd_supported() {
            "avx2"
        } else {
            "unavailable"
        },
    );
    let mut agg_fields = vec![("tiles", json::num_u(all[0].count()))];
    for (slot, (name, _, _)) in MODES.into_iter().enumerate() {
        agg_fields.push((name, hist_json(&all[slot])));
    }
    Value::obj(vec![
        ("host_cores", json::num_u(cores as u64)),
        (
            "simd_supported",
            Value::Bool(kdv_geom::simd::simd_supported()),
        ),
        (
            "simd_lanes",
            json::num_u(kdv_geom::simd::simd_lanes() as u64),
        ),
        ("kinds", Value::Str("eps+tau".to_string())),
        ("rounds", json::num_u(rounds as u64)),
        ("zooms", Value::Arr(zooms)),
        ("all_zooms", Value::obj(agg_fields)),
        ("p99_speedup_batched", json::num_f(agg_speedup)),
        ("p99_speedup_batched_min", json::num_f(min_speedup)),
    ])
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let mut points = Dataset::Crime.generate(POINTS, SEED);
    points.scale_weights(1.0 / points.len() as f64);
    let kernel = Kernel::gaussian(scott_gamma(&points).gamma);
    let config = ServerConfig {
        tile_size: TILE_SIZE,
        max_z: *LEVELS.iter().max().expect("levels"),
        eps: 0.1,
        workers: 4,
        ..ServerConfig::default()
    };
    let server = TileServer::start(config, &points, kernel).expect("server start");
    let addr = server.local_addr();

    let mut levels = Vec::new();
    for z in LEVELS {
        let mut cold = LogHistogram::new();
        let mut cached = LogHistogram::new();
        for (pass, hist) in [(0, &mut cold), (1, &mut cached)] {
            for x in 0..1u32 << z {
                for y in 0..1u32 << z {
                    let path = format!("/tiles/eps/{z}/{x}/{y}.png");
                    let start = Instant::now();
                    let (status, body) = fetch(addr, &path);
                    let ns = start.elapsed().as_nanos() as u64;
                    assert_eq!(status, 200, "{path} (pass {pass})");
                    assert!(body.starts_with(b"\x89PNG"), "{path}: not a PNG");
                    hist.record(ns);
                }
            }
        }
        println!(
            "z={z}: cold p50 {:.1} ms, cached p50 {:.3} ms ({} tiles)",
            cold.quantile_le(0.5) as f64 / 1e6,
            cached.quantile_le(0.5) as f64 / 1e6,
            cold.count(),
        );
        levels.push(Value::obj(vec![
            ("z", json::num_u(z as u64)),
            ("tiles", json::num_u(cold.count())),
            ("cold", hist_json(&cold)),
            ("cached", hist_json(&cached)),
        ]));
    }
    server.stop();

    let cold_path = cold_path();

    let mut fields = vec![
        ("schema", Value::Str("kdv-bench-serve/7".to_string())),
        ("dataset", Value::Str("crime".to_string())),
        ("points", json::num_u(POINTS as u64)),
        ("tile_size", json::num_u(TILE_SIZE as u64)),
        ("kind", Value::Str("eps".to_string())),
        ("levels", Value::Arr(levels)),
        ("cold_path", cold_path),
    ];
    // KDV_BENCH_FAST: the CI perf smoke only needs the sections above
    // (cached levels + per-mode cold path); the 1M-point cold-start,
    // ingest, cluster, pyramid, and tracing sections are minutes of
    // extra wall time that belong to full sidecar refreshes.
    if std::env::var("KDV_BENCH_FAST").is_err() {
        let tmp = std::env::temp_dir().join(format!("kdv-serve-bench-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&tmp);
        std::fs::create_dir_all(&tmp).expect("mkdir tmp");
        fields.push(("cold_start", cold_start(&tmp)));
        fields.push(("ingest", ingest_bench(&tmp)));
        fields.push(("cluster", cluster_bench(&tmp)));
        fields.push(("pyramid", pyramid_bench(&tmp)));
        std::fs::remove_dir_all(&tmp).ok();
        fields.push(("trace_overhead", trace_overhead()));
    }

    let doc = Value::obj(fields);
    std::fs::write(&out, doc.render()).expect("write sidecar");
    println!("wrote {out}");
}

//! Serving-latency baseline: cold vs. cached tile fetches.
//!
//! Starts an in-process [`TileServer`] on an emulated crime dataset,
//! fetches every εKDV tile at z ∈ {0, 2, 4} twice over real sockets —
//! the first pass renders (cold), the second is served from the LRU
//! cache — and writes per-level latency histograms (p50/p99/mean) to
//! `BENCH_serve.json`. Later PRs diff this sidecar to catch serving
//! regressions.
//!
//! ```text
//! cargo run --release -p kdv-bench --bin serve_bench [-- out.json]
//! ```

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use kdv_core::bandwidth::scott_gamma;
use kdv_core::kernel::Kernel;
use kdv_data::Dataset;
use kdv_server::{ServerConfig, TileServer};
use kdv_telemetry::json::{self, Value};
use kdv_telemetry::LogHistogram;

const POINTS: usize = 20_000;
const SEED: u64 = 11;
const TILE_SIZE: u32 = 128;
const LEVELS: [u8; 3] = [0, 2, 4];

fn fetch(addr: SocketAddr, path: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").as_bytes())
        .expect("request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("response");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head");
    let head = std::str::from_utf8(&raw[..head_end]).expect("UTF-8 head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, raw[head_end + 4..].to_vec())
}

fn hist_json(h: &LogHistogram) -> Value {
    Value::obj(vec![
        ("count", json::num_u(h.count())),
        ("mean_us", json::num_f(h.mean() / 1e3)),
        ("p50_le_us", json::num_f(h.quantile_le(0.5) as f64 / 1e3)),
        ("p99_le_us", json::num_f(h.quantile_le(0.99) as f64 / 1e3)),
        ("max_us", json::num_f(h.max() as f64 / 1e3)),
    ])
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let mut points = Dataset::Crime.generate(POINTS, SEED);
    points.scale_weights(1.0 / points.len() as f64);
    let kernel = Kernel::gaussian(scott_gamma(&points).gamma);
    let config = ServerConfig {
        tile_size: TILE_SIZE,
        max_z: *LEVELS.iter().max().expect("levels"),
        eps: 0.1,
        workers: 4,
        ..ServerConfig::default()
    };
    let server = TileServer::start(config, &points, kernel).expect("server start");
    let addr = server.local_addr();

    let mut levels = Vec::new();
    for z in LEVELS {
        let mut cold = LogHistogram::new();
        let mut cached = LogHistogram::new();
        for (pass, hist) in [(0, &mut cold), (1, &mut cached)] {
            for x in 0..1u32 << z {
                for y in 0..1u32 << z {
                    let path = format!("/tiles/eps/{z}/{x}/{y}.png");
                    let start = Instant::now();
                    let (status, body) = fetch(addr, &path);
                    let ns = start.elapsed().as_nanos() as u64;
                    assert_eq!(status, 200, "{path} (pass {pass})");
                    assert!(body.starts_with(b"\x89PNG"), "{path}: not a PNG");
                    hist.record(ns);
                }
            }
        }
        println!(
            "z={z}: cold p50 {:.1} ms, cached p50 {:.3} ms ({} tiles)",
            cold.quantile_le(0.5) as f64 / 1e6,
            cached.quantile_le(0.5) as f64 / 1e6,
            cold.count(),
        );
        levels.push(Value::obj(vec![
            ("z", json::num_u(z as u64)),
            ("tiles", json::num_u(cold.count())),
            ("cold", hist_json(&cold)),
            ("cached", hist_json(&cached)),
        ]));
    }
    server.stop();

    let doc = Value::obj(vec![
        ("schema", Value::Str("kdv-bench-serve/1".to_string())),
        ("dataset", Value::Str("crime".to_string())),
        ("points", json::num_u(POINTS as u64)),
        ("tile_size", json::num_u(TILE_SIZE as u64)),
        ("kind", Value::Str("eps".to_string())),
        ("levels", Value::Arr(levels)),
    ]);
    std::fs::write(&out, doc.render()).expect("write sidecar");
    println!("wrote {out}");
}

//! Figure harness CLI.
//!
//! ```text
//! cargo run -p kdv-bench --release --bin figures -- all
//! cargo run -p kdv-bench --release --bin figures -- fig14 fig18
//! cargo run -p kdv-bench --release --bin figures -- --scale smoke all
//! cargo run -p kdv-bench --release --bin figures -- --scale paper fig14
//! cargo run -p kdv-bench --release --bin figures -- --list
//! ```
//!
//! Tables print to stdout; TSV series and PPM images land in
//! `target/figures/` (override with `--out DIR`).

use kdv_bench::figures::{registry, FigureCtx};
use kdv_bench::workload::RunScale;
use kdv_telemetry::json::{self, Value};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> String {
    let mut s = String::from(
        "usage: figures [--scale quick|medium|smoke|paper] [--out DIR] [--seed N] <ids...|all>\n\
         \noptions:\n  --list    show available figure ids\n\navailable figures:\n",
    );
    for (id, desc, _) in registry() {
        s.push_str(&format!("  {id:<8} {desc}\n"));
    }
    s
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = RunScale::quick();
    let mut scale_name = "quick";
    let mut out_dir = PathBuf::from("target/figures");
    let mut seed = 20200614u64;
    let mut ids: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--scale needs a value\n{}", usage());
                    return ExitCode::FAILURE;
                };
                scale_name = match v.as_str() {
                    "quick" => {
                        scale = RunScale::quick();
                        "quick"
                    }
                    "smoke" => {
                        scale = RunScale::smoke();
                        "smoke"
                    }
                    "medium" => {
                        scale = RunScale::medium();
                        "medium"
                    }
                    "paper" => {
                        scale = RunScale::paper();
                        "paper"
                    }
                    other => {
                        eprintln!("unknown scale {other:?}\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--out" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--out needs a value\n{}", usage());
                    return ExitCode::FAILURE;
                };
                out_dir = PathBuf::from(v);
            }
            "--seed" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse().ok()) else {
                    eprintln!("--seed needs an integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                seed = v;
            }
            "--list" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }

    if ids.is_empty() {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    }

    let reg = registry();
    let selected: Vec<_> = if ids.len() == 1 && ids[0] == "all" {
        reg.iter().collect()
    } else {
        let mut sel = Vec::new();
        for id in &ids {
            match reg.iter().find(|(rid, _, _)| rid == id) {
                Some(entry) => sel.push(entry),
                None => {
                    eprintln!("unknown figure id {id:?}\n{}", usage());
                    return ExitCode::FAILURE;
                }
            }
        }
        sel
    };

    let ctx = FigureCtx {
        scale,
        out_dir: out_dir.clone(),
        seed,
    };
    println!(
        "# QUAD figure harness — scale = {scale_name} (n_frac = {}, res ÷ {}, budget = {:?}), out = {}",
        ctx.scale.n_frac,
        ctx.scale.res_div,
        ctx.scale.cell_budget,
        out_dir.display()
    );

    let run_start = Instant::now();
    let mut run_entries = Vec::new();
    for (id, desc, runner) in selected {
        println!("\n### {id}: {desc}");
        let start = Instant::now();
        let tables = runner(&ctx);
        for (i, t) in tables.iter().enumerate() {
            println!("\n{}", t.to_text());
            let name = if tables.len() == 1 {
                id.to_string()
            } else {
                format!("{id}_panel{i}")
            };
            if let Ok(Some(path)) = kdv_bench::plot::save_svg(t, &ctx.out_dir, &name) {
                println!("[chart: {}]", path.display());
            }
        }
        println!("[{id} done in {:.1?}]", start.elapsed());
        run_entries.push(Value::obj(vec![
            ("id", Value::Str(id.to_string())),
            ("tables", json::num_u(tables.len() as u64)),
            ("wall_s", json::num_f(start.elapsed().as_secs_f64())),
        ]));
    }

    // Machine-readable run manifest alongside the TSV/SVG artifacts
    // (per-cell refinement counts land in the figures' own BENCH_*.json
    // sidecars, e.g. BENCH_fig14_<dataset>.json).
    let manifest = Value::obj(vec![
        ("schema", Value::Str("kdv-bench-run/1".into())),
        ("scale", Value::Str(scale_name.into())),
        ("seed", json::num_u(seed)),
        ("wall_s", json::num_f(run_start.elapsed().as_secs_f64())),
        ("figures", Value::Arr(run_entries)),
    ]);
    let manifest_path = out_dir.join("BENCH_run.json");
    let _ = std::fs::create_dir_all(&out_dir);
    match std::fs::write(&manifest_path, manifest.render()) {
        Ok(()) => println!("\n[run manifest: {}]", manifest_path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", manifest_path.display()),
    }
    ExitCode::SUCCESS
}

//! Workload construction and timing shared by every figure runner.

use kdv_core::bandwidth::scott_gamma_for;
use kdv_core::bounds::BoundFamily;
use kdv_core::engine::RefineEvaluator;
use kdv_core::kernel::{Kernel, KernelType};
use kdv_core::method::{make_evaluator, MethodKind, MethodParams, PixelEvaluator};
use kdv_core::raster::RasterSpec;
use kdv_data::Dataset;
use kdv_geom::PointSet;
use kdv_index::KdTree;
use kdv_telemetry::RenderMetrics;
use std::time::{Duration, Instant};

/// How far below paper scale an experiment runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunScale {
    /// Fraction of each dataset's paper cardinality to generate.
    pub n_frac: f64,
    /// Divisor applied to both raster axes (8 → 1280×960 becomes
    /// 160×120).
    pub res_div: u32,
    /// Soft per-cell wall-clock budget; a method exceeding it is
    /// reported as censored, mirroring the paper's 7200 s cutoff.
    pub cell_budget: Duration,
}

impl RunScale {
    /// The default quick scale (about 1% workloads).
    pub fn quick() -> Self {
        Self {
            n_frac: 0.01,
            res_div: 8,
            cell_budget: Duration::from_secs(10),
        }
    }

    /// A ~10% scale: the smallest size at which the paper's method
    /// separation is clearly visible (minutes per headline figure).
    pub fn medium() -> Self {
        Self {
            n_frac: 0.1,
            res_div: 8,
            cell_budget: Duration::from_secs(60),
        }
    }

    /// A ~0.1% smoke scale for tests and CI.
    pub fn smoke() -> Self {
        Self {
            n_frac: 0.001,
            res_div: 32,
            cell_budget: Duration::from_secs(2),
        }
    }

    /// The paper's published scale (hours of runtime).
    pub fn paper() -> Self {
        Self {
            n_frac: 1.0,
            res_div: 1,
            cell_budget: Duration::from_secs(7200),
        }
    }

    /// Dataset cardinality at this scale (at least 500 points).
    pub fn dataset_size(&self, ds: Dataset) -> usize {
        ((ds.paper_size() as f64 * self.n_frac) as usize).max(500)
    }

    /// Scaled resolution for a paper resolution.
    pub fn resolution(&self, paper_w: u32, paper_h: u32) -> (u32, u32) {
        (
            (paper_w / self.res_div).max(8),
            (paper_h / self.res_div).max(6),
        )
    }
}

/// A fully-constructed experiment substrate: dataset, index, kernel,
/// raster.
#[derive(Debug)]
pub struct Workload {
    /// Which dataset emulation this is.
    pub dataset: Dataset,
    /// The generated points.
    pub points: PointSet,
    /// kd-tree over the points.
    pub tree: KdTree,
    /// Kernel with Scott's-rule γ.
    pub kernel: Kernel,
    /// Raster covering the data window.
    pub raster: RasterSpec,
}

impl Workload {
    /// Builds a workload for a dataset at scale with a paper resolution.
    pub fn build(
        ds: Dataset,
        kernel_ty: KernelType,
        scale: &RunScale,
        paper_res: (u32, u32),
        seed: u64,
    ) -> Self {
        let n = scale.dataset_size(ds);
        Self::build_with_n(
            ds,
            kernel_ty,
            n,
            scale.resolution(paper_res.0, paper_res.1),
            seed,
        )
    }

    /// Builds a workload with an explicit point count and resolution.
    pub fn build_with_n(
        ds: Dataset,
        kernel_ty: KernelType,
        n: usize,
        res: (u32, u32),
        seed: u64,
    ) -> Self {
        let points = ds.generate(n, seed);
        let bw = scott_gamma_for(&points, kernel_ty);
        let mut points = points;
        points.scale_weights(bw.weight);
        let kernel = Kernel::new(kernel_ty, bw.gamma);
        let tree = KdTree::build_default(&points);
        let raster = RasterSpec::covering(&points, res.0, res.1, 0.02);
        Self {
            dataset: ds,
            points,
            tree,
            kernel,
            raster,
        }
    }

    /// Constructs the evaluator for a method (εKDV configuration).
    pub fn evaluator_eps(
        &self,
        method: MethodKind,
        zorder_eps: f64,
    ) -> Option<Box<dyn PixelEvaluator + '_>> {
        let params = MethodParams {
            zorder_eps,
            ..MethodParams::default()
        };
        make_evaluator(method, &self.tree, self.kernel, "εKDV", &params).ok()
    }

    /// Constructs a concrete refinement evaluator over this workload's
    /// tree — the form the metered/probed timing paths need (the boxed
    /// [`PixelEvaluator`] erases the stats interface).
    pub fn refine_evaluator(&self, family: BoundFamily) -> RefineEvaluator<'_> {
        RefineEvaluator::new(&self.tree, self.kernel, family)
    }

    /// Constructs the evaluator for a method (τKDV configuration).
    pub fn evaluator_tau(&self, method: MethodKind) -> Option<Box<dyn PixelEvaluator + '_>> {
        make_evaluator(
            method,
            &self.tree,
            self.kernel,
            "τKDV",
            &MethodParams::default(),
        )
        .ok()
    }
}

/// Result of one timed cell: seconds, or `None` if the budget censored
/// the run.
pub type CellTime = Option<f64>;

/// Times a full-raster εKDV render under the budget; returns `None`
/// (censored) when the budget expires mid-render, like the paper's
/// "> 7200 s" entries.
pub fn time_eps_render(
    ev: &mut dyn PixelEvaluator,
    raster: &RasterSpec,
    eps: f64,
    budget: Duration,
) -> CellTime {
    let start = Instant::now();
    for row in 0..raster.height() {
        for col in 0..raster.width() {
            let q = raster.pixel_center(col, row);
            std::hint::black_box(ev.eval_eps(&q, eps));
        }
        if start.elapsed() > budget {
            return None;
        }
    }
    Some(start.elapsed().as_secs_f64())
}

/// Times a full-raster εKDV render through the instrumented path:
/// refinement events, per-pixel histograms, and (if configured) the
/// cost map accumulate into `metrics`. Censoring matches
/// [`time_eps_render`]; on a censored run `metrics` holds the partial
/// render's counts and no wall time.
pub fn time_eps_render_metered(
    ev: &mut RefineEvaluator<'_>,
    raster: &RasterSpec,
    eps: f64,
    budget: Duration,
    metrics: &mut RenderMetrics,
) -> CellTime {
    let start = Instant::now();
    for row in 0..raster.height() {
        for col in 0..raster.width() {
            let q = raster.pixel_center(col, row);
            let t0 = Instant::now();
            std::hint::black_box(ev.eval_eps_with(&q, eps, &mut metrics.events));
            let latency = t0.elapsed().as_nanos() as u64;
            metrics.record_pixel(col, row, &ev.last_stats(), latency);
        }
        if start.elapsed() > budget {
            return None;
        }
    }
    metrics.set_wall_ns(start.elapsed().as_nanos() as u64);
    Some(start.elapsed().as_secs_f64())
}

/// Times a full-raster τKDV render under the budget.
pub fn time_tau_render(
    ev: &mut dyn PixelEvaluator,
    raster: &RasterSpec,
    tau: f64,
    budget: Duration,
) -> CellTime {
    let start = Instant::now();
    for row in 0..raster.height() {
        for col in 0..raster.width() {
            let q = raster.pixel_center(col, row);
            std::hint::black_box(ev.eval_tau(&q, tau));
        }
        if start.elapsed() > budget {
            return None;
        }
    }
    Some(start.elapsed().as_secs_f64())
}

/// Formats a cell time like the paper's plots (censored = `>budget`).
pub fn fmt_cell(t: CellTime, budget: Duration) -> String {
    match t {
        Some(s) => format!("{s:.4}"),
        None => format!(">{}", budget.as_secs()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_shrinks_paper_sizes() {
        let s = RunScale::quick();
        assert_eq!(s.dataset_size(Dataset::Hep), 70_000);
        assert_eq!(s.resolution(1280, 960), (160, 120));
    }

    #[test]
    fn scaled_sizes_never_degenerate() {
        let s = RunScale::smoke();
        assert!(s.dataset_size(Dataset::ElNino) >= 500);
        let (w, h) = s.resolution(320, 240);
        assert!(w >= 8 && h >= 6);
    }

    #[test]
    fn workload_builds_all_methods() {
        let w = Workload::build_with_n(Dataset::Crime, KernelType::Gaussian, 800, (16, 12), 3);
        for m in MethodKind::ALL {
            let eps_ok = w.evaluator_eps(m, 0.05).is_some();
            assert_eq!(eps_ok, m.supports_eps(), "{m:?} εKDV availability");
            let tau_ok = w.evaluator_tau(m).is_some();
            assert_eq!(tau_ok, m.supports_tau(), "{m:?} τKDV availability");
        }
    }

    #[test]
    fn censoring_kicks_in_for_tiny_budget() {
        let w = Workload::build_with_n(Dataset::Hep, KernelType::Gaussian, 20_000, (64, 48), 4);
        let mut ev = w.evaluator_eps(MethodKind::Exact, 0.05).expect("exact");
        let t = time_eps_render(&mut ev, &w.raster, 0.01, Duration::from_nanos(1));
        assert!(t.is_none(), "1 ns budget must censor");
        assert_eq!(fmt_cell(t, Duration::from_secs(9)), ">9");
    }

    #[test]
    fn metered_timing_accumulates_events() {
        let w = Workload::build_with_n(Dataset::Crime, KernelType::Gaussian, 1000, (12, 9), 7);
        let mut ev = w.refine_evaluator(BoundFamily::Quadratic);
        let mut metrics = RenderMetrics::new();
        let t = time_eps_render_metered(
            &mut ev,
            &w.raster,
            0.05,
            Duration::from_secs(30),
            &mut metrics,
        );
        assert!(t.is_some(), "smoke workload should finish within budget");
        assert_eq!(metrics.pixels, w.raster.num_pixels() as u64);
        assert!(metrics.events.heap_pops > 0);
        assert_eq!(metrics.iterations.sum(), metrics.events.heap_pops);
        assert!(metrics.wall_ns > 0);
    }

    #[test]
    fn weights_are_normalized_by_scott_rule() {
        let w = Workload::build_with_n(Dataset::Home, KernelType::Gaussian, 1000, (8, 6), 5);
        assert!((w.points.total_weight() - 1.0).abs() < 1e-9);
    }
}

//! Minimal SVG line charts for figure tables.
//!
//! The paper's figures are log-scale time/error series; this module
//! renders each harness [`Table`] as a standalone SVG (first column =
//! x labels, remaining numeric columns = series) so results can be
//! inspected without any plotting stack. Censored cells (`>7200`) and
//! non-numeric columns are skipped.

use crate::report::Table;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 150.0;
const MARGIN_T: f64 = 50.0;
const MARGIN_B: f64 = 50.0;

/// Brand-neutral categorical palette (distinct in both themes).
const COLORS: [&str; 6] = [
    "#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#9c6bce", "#97bbf5",
];

/// A parsed numeric series.
struct Series {
    name: String,
    /// `(x index, value)` — censored/missing cells are skipped.
    points: Vec<(usize, f64)>,
}

/// Extracts the numeric series of a table (columns 2+).
fn extract_series(table: &Table) -> (Vec<String>, Vec<Series>) {
    let tsv = table.to_tsv();
    let mut lines = tsv.lines();
    let _title = lines.next();
    let header: Vec<String> = lines
        .next()
        .map(|h| {
            h.trim_start_matches("# ")
                .split('\t')
                .map(|s| s.to_string())
                .collect()
        })
        .unwrap_or_default();
    let rows: Vec<Vec<String>> = lines
        .map(|l| l.split('\t').map(|s| s.to_string()).collect())
        .collect();
    if header.len() < 2 || rows.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let x_labels: Vec<String> = rows.iter().map(|r| r[0].clone()).collect();
    let mut series = Vec::new();
    for (col, name) in header.iter().enumerate().skip(1) {
        let mut points = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            if let Some(cell) = row.get(col) {
                if let Ok(v) = cell.parse::<f64>() {
                    if v.is_finite() {
                        points.push((i, v));
                    }
                }
            }
        }
        if !points.is_empty() {
            series.push(Series {
                name: name.clone(),
                points,
            });
        }
    }
    (x_labels, series)
}

/// Renders the table as an SVG log-y line chart. Returns `None` when
/// the table has no positive numeric series (nothing to plot on a log
/// axis).
pub fn to_svg(table: &Table) -> Option<String> {
    let (x_labels, series) = extract_series(table);
    if x_labels.len() < 2 || series.is_empty() {
        return None;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for s in &series {
        for &(_, v) in &s.points {
            if v > 0.0 {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return None;
    }
    let (log_lo, log_hi) = (
        lo.log10().floor(),
        hi.log10().ceil().max(lo.log10().floor() + 1.0),
    );

    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let x_of = |i: usize| MARGIN_L + plot_w * i as f64 / (x_labels.len() - 1) as f64;
    let y_of = |v: f64| {
        let t = (v.log10() - log_lo) / (log_hi - log_lo);
        MARGIN_T + plot_h * (1.0 - t)
    };

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" font-family="sans-serif" font-size="12">"#
    );
    let _ = writeln!(
        svg,
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    );
    let title = xml_escape(table.title());
    let _ = writeln!(
        svg,
        r#"<text x="{}" y="24" font-size="13" font-weight="bold">{title}</text>"#,
        MARGIN_L
    );

    // Log-decade gridlines + y labels.
    let mut decade = log_lo as i64;
    while decade as f64 <= log_hi {
        let y = y_of(10f64.powi(decade as i32));
        let _ = writeln!(
            svg,
            r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
            MARGIN_L + plot_w
        );
        let _ = writeln!(
            svg,
            r##"<text x="{:.1}" y="{:.1}" text-anchor="end" fill="#555">1e{decade}</text>"##,
            MARGIN_L - 8.0,
            y + 4.0
        );
        decade += 1;
    }
    // X labels.
    for (i, label) in x_labels.iter().enumerate() {
        let x = x_of(i);
        let _ = writeln!(
            svg,
            r##"<text x="{x:.1}" y="{:.1}" text-anchor="middle" fill="#555">{}</text>"##,
            MARGIN_T + plot_h + 20.0,
            xml_escape(label)
        );
    }
    // Axes.
    let _ = writeln!(
        svg,
        r##"<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{:.1}" stroke="#333"/>"##,
        MARGIN_T + plot_h
    );
    let _ = writeln!(
        svg,
        r##"<line x1="{MARGIN_L}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#333"/>"##,
        MARGIN_T + plot_h,
        MARGIN_L + plot_w,
        MARGIN_T + plot_h
    );

    // Series polylines + legend.
    for (si, s) in series.iter().enumerate() {
        let color = COLORS[si % COLORS.len()];
        let pts: Vec<String> = s
            .points
            .iter()
            .filter(|(_, v)| *v > 0.0)
            .map(|&(i, v)| format!("{:.1},{:.1}", x_of(i), y_of(v)))
            .collect();
        if pts.len() >= 2 {
            let _ = writeln!(
                svg,
                r#"<polyline fill="none" stroke="{color}" stroke-width="2" points="{}"/>"#,
                pts.join(" ")
            );
        }
        for p in &pts {
            let mut it = p.split(',');
            let (x, y) = (it.next().unwrap_or("0"), it.next().unwrap_or("0"));
            let _ = writeln!(svg, r#"<circle cx="{x}" cy="{y}" r="3" fill="{color}"/>"#);
        }
        let ly = MARGIN_T + 16.0 * si as f64;
        let lx = MARGIN_L + plot_w + 14.0;
        let _ = writeln!(
            svg,
            r#"<rect x="{lx:.1}" y="{:.1}" width="10" height="10" fill="{color}"/>"#,
            ly - 9.0
        );
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="{ly:.1}">{}</text>"#,
            lx + 16.0,
            xml_escape(&s.name)
        );
    }
    svg.push_str("</svg>\n");
    Some(svg)
}

/// Writes the chart to `dir/<name>.svg` (no-op when unplottable).
pub fn save_svg(table: &Table, dir: &Path, name: &str) -> io::Result<Option<PathBuf>> {
    let Some(svg) = to_svg(table) else {
        return Ok(None);
    };
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.svg"));
    fs::write(&path, svg)?;
    Ok(Some(path))
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("Fig X — time", &["eps", "QUAD", "KARL"]);
        t.push_row(vec!["0.01".into(), "0.5".into(), "5.0".into()]);
        t.push_row(vec!["0.02".into(), "0.3".into(), "3.0".into()]);
        t.push_row(vec!["0.05".into(), "0.1".into(), ">10".into()]);
        t
    }

    #[test]
    fn renders_polylines_and_legend() {
        let svg = to_svg(&sample_table()).expect("plottable");
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("QUAD") && svg.contains("KARL"));
        // Censored cell skipped: KARL polyline has 2 points only.
        assert!(svg.contains("Fig X"));
    }

    #[test]
    fn censored_only_series_is_dropped() {
        let mut t = Table::new("t", &["x", "dead"]);
        t.push_row(vec!["1".into(), ">10".into()]);
        t.push_row(vec!["2".into(), ">10".into()]);
        assert!(to_svg(&t).is_none());
    }

    #[test]
    fn single_row_is_unplottable() {
        let mut t = Table::new("t", &["x", "y"]);
        t.push_row(vec!["1".into(), "2.0".into()]);
        assert!(to_svg(&t).is_none());
    }

    #[test]
    fn escapes_xml_in_titles() {
        let mut t = Table::new("a < b & c", &["x", "y"]);
        t.push_row(vec!["1".into(), "2.0".into()]);
        t.push_row(vec!["2".into(), "3.0".into()]);
        let svg = to_svg(&t).expect("plottable");
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn save_writes_file() {
        let dir = std::env::temp_dir().join("kdv_plot_test");
        let path = save_svg(&sample_table(), &dir, "figx")
            .expect("io")
            .expect("plottable");
        assert!(path.exists());
        let _ = std::fs::remove_file(&path);
    }
}

//! Tabular output: aligned stdout rendering plus TSV files that plot
//! directly with gnuplot/matplotlib.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders aligned text for stdout.
    pub fn to_text(&self) -> String {
        // Column widths in characters, not bytes — headers like "ε" are
        // multi-byte UTF-8 and `format!` pads by character count.
        let chars = |s: &String| s.chars().count();
        let mut widths: Vec<usize> = self.header.iter().map(chars).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(chars(c));
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders TSV (header line prefixed with `#`).
    pub fn to_tsv(&self) -> String {
        let mut out = format!("# {}\n# {}\n", self.title, self.header.join("\t"));
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Writes the TSV rendering to `dir/<name>.tsv`.
    pub fn save_tsv(&self, dir: &Path, name: &str) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.tsv"));
        fs::write(&path, self.to_tsv())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Fig X", &["ε", "QUAD", "KARL"]);
        t.push_row(vec!["0.01".into(), "1.5".into(), "12.0".into()]);
        t.push_row(vec!["0.05".into(), "0.9".into(), "7.25".into()]);
        t
    }

    #[test]
    fn text_is_aligned() {
        let text = sample().to_text();
        assert!(text.contains("== Fig X =="));
        let lines: Vec<&str> = text.lines().collect();
        // Header and data lines have equal display width (chars, since
        // the header contains multi-byte "ε").
        assert_eq!(lines[1].chars().count(), lines[3].chars().count());
    }

    #[test]
    fn tsv_has_commented_header() {
        let tsv = sample().to_tsv();
        let mut lines = tsv.lines();
        assert!(lines.next().expect("title").starts_with("# Fig X"));
        assert_eq!(lines.next().expect("header"), "# ε\tQUAD\tKARL");
        assert_eq!(lines.next().expect("row"), "0.01\t1.5\t12.0");
    }

    #[test]
    fn save_roundtrip() {
        let dir = std::env::temp_dir().join("kdv_report_test");
        let path = sample().save_tsv(&dir, "figx").expect("save");
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.contains("0.05\t0.9\t7.25"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }
}

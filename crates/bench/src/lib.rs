//! Benchmark harness regenerating every measured table and figure of
//! the QUAD paper's evaluation (§7).
//!
//! Entry points:
//!
//! * `cargo run -p kdv-bench --release --bin figures -- <ids|all>` —
//!   regenerates the figures as TSV series (plus PPM images where the
//!   paper shows color maps) under `target/figures/`,
//! * `cargo bench -p kdv-bench` — criterion micro-benchmarks of the
//!   individual components (bound evaluation, per-pixel refinement,
//!   tree construction, sampling, PCA, progressive ordering).
//!
//! # Scaling
//!
//! The paper's full workloads (7 M points × 2560×1920 pixels, 2-hour
//! timeouts) are deliberately laptop-hostile. The harness therefore
//! runs each experiment at a configurable [`RunScale`]; the default
//! (`n = 1%` of the paper's cardinality, resolution ÷ 8, 10 s
//! per-cell budget) completes in minutes while preserving the paper's
//! *relative* method ordering. `--scale paper` restores the published
//! parameters. `EXPERIMENTS.md` records both scales' expectations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod plot;
pub mod report;
pub mod workload;

pub use report::Table;
pub use workload::{RunScale, Workload};

//! Pyramid serving end-to-end: a store-mode server over a snapshot
//! that carries a certified coreset ladder (PYRA section). Low-zoom
//! tiles are answered from a level and say so (`X-Kdv-Level`), deep
//! zoom falls back to the full index, τ tiles are byte-identical to a
//! pyramid-free server, ingest deltas merge over a level, and
//! compaction re-certifies the ladder into the rewritten snapshot.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use kdv_core::bandwidth::scott_gamma;
use kdv_core::kernel::Kernel;
use kdv_core::raster::RasterSpec;
use kdv_core::threshold::estimate_levels;
use kdv_data::Dataset;
use kdv_geom::PointSet;
use kdv_index::KdTree;
use kdv_pyramid::{PyramidBuilder, PyramidConfig};
use kdv_server::{ServerConfig, TileServer};
use kdv_store::{Snapshot, SnapshotWriter};
use kdv_telemetry::json::{self, Value};

fn request(addr: SocketAddr, raw: String) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head");
    let head = std::str::from_utf8(&raw[..split]).expect("head UTF-8");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .expect("status line")
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .map(|l| {
            let (name, value) = l.split_once(':').expect("header");
            (name.trim().to_ascii_lowercase(), value.trim().to_string())
        })
        .collect();
    (status, headers, raw[split + 4..].to_vec())
}

fn get(addr: SocketAddr, path: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    request(addr, format!("GET {path} HTTP/1.1\r\nHost: kdv\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    request(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: kdv\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == &name.to_ascii_lowercase())
        .map(|(_, v)| v.as_str())
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kdv-pyra-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn metrics(addr: SocketAddr) -> Value {
    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    json::parse(std::str::from_utf8(&body).expect("utf8")).expect("metrics JSON")
}

struct Fixture {
    points: PointSet,
    /// ε_s of the coarsest level — the server's ε must be at least
    /// twice this for any pyramid level to be admissible.
    coarse_eps_s: f64,
    tau: f64,
}

/// Builds the shared fixture and writes `crime.kdvs` into `dir`: with
/// a certified two-level ladder when `with_pyramid`, plain otherwise.
fn write_fixture(dir: &Path, with_pyramid: bool) -> Fixture {
    let mut points = Dataset::Crime.generate(4000, 11);
    points.scale_weights(1.0 / points.len() as f64);
    let kernel = Kernel::gaussian(scott_gamma(&points).gamma);
    let tree = KdTree::build_default(&points);
    let raster = RasterSpec::covering(&points, 48, 48, 0.05);
    let tau = estimate_levels(&tree, kernel, &raster, 32, 32).tau(0.1);
    let config = PyramidConfig {
        sizes: vec![400, 1000],
        probe_res: 16,
        ..PyramidConfig::default()
    };
    let (pyramid, _) = PyramidBuilder::new(&tree, kernel)
        .with_config(config)
        .build()
        .expect("pyramid builds");
    let coarse_eps_s = pyramid.levels()[0].eps_s;
    let mut writer = SnapshotWriter::new(&tree, kernel);
    if with_pyramid {
        writer = writer.with_pyramid(
            pyramid
                .levels()
                .iter()
                .map(|lv| (lv.tree.points().clone(), lv.eps_s))
                .collect(),
        );
    }
    writer
        .write_to(dir.join("crime.kdvs"))
        .expect("write snapshot");
    Fixture {
        points,
        coarse_eps_s,
        tau,
    }
}

fn config(f: &Fixture) -> ServerConfig {
    ServerConfig {
        tile_size: 32,
        max_z: 2,
        pyramid_max_z: 1,
        // Generous enough to admit the coarsest level (ε_s ≤ ε/2).
        eps: f.coarse_eps_s * 2.0 + 0.01,
        tau: f.tau,
        workers: 4,
        queue: 32,
        allow_shutdown: true,
        // Keep compaction out of tests that don't ask for it.
        memtable_points: 8192,
        compact_points: 8192,
        ..ServerConfig::default()
    }
}

#[test]
fn low_zoom_tiles_serve_from_a_level_and_deep_zoom_from_the_full_index() {
    let dir = temp_store("levels");
    let f = write_fixture(&dir, true);
    let server = TileServer::start_with_store(config(&f), &dir).expect("start");
    let addr = server.local_addr();

    // z0 is admissible: the coarsest level answers and says so.
    let (status, headers, body) = get(addr, "/tiles/crime/eps/0/0/0.png");
    assert_eq!(status, 200);
    assert!(body.starts_with(b"\x89PNG"));
    assert_eq!(header(&headers, "X-Kdv-Level"), Some("0"));
    assert_eq!(header(&headers, "X-Kdv-Cache"), Some("miss"));

    // The repeat is a cache hit and reports the same level: the level
    // is part of the key, decided before the lookup.
    let (status, headers, cached) = get(addr, "/tiles/crime/eps/0/0/0.png");
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "X-Kdv-Cache"), Some("hit"));
    assert_eq!(header(&headers, "X-Kdv-Level"), Some("0"));
    assert_eq!(cached, body, "hit returns the rendered bytes");

    // Past pyramid_max_z the full index answers, even though the
    // level's budget would admit it.
    let (status, headers, _) = get(addr, "/tiles/crime/eps/2/0/0.png");
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "X-Kdv-Level"), Some("full"));

    // τ tiles go through the same pick.
    let (status, headers, _) = get(addr, "/tiles/crime/tau/0/0/0.png");
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "X-Kdv-Level"), Some("0"));

    // /metrics sees both paths.
    let doc = metrics(addr);
    let pyra = doc.get("pyramid").expect("pyramid block");
    let num = |v: &Value, k: &str| v.get(k).and_then(Value::as_f64).expect(k);
    assert!(num(pyra, "pyramid_renders") >= 2.0);
    assert!(num(pyra, "full_renders") >= 1.0);
    let per_level = pyra
        .get("level_renders")
        .and_then(Value::as_arr)
        .expect("level_renders");
    assert!(per_level[0].as_f64().expect("level 0 count") >= 2.0);

    // And the Prometheus exposition carries the same families.
    let (status, _, body) = get(addr, "/metrics?format=prometheus");
    assert_eq!(status, 200);
    let text = std::str::from_utf8(&body).expect("utf8");
    assert!(text.contains("kdv_pyramid_renders_total{level=\"0\"}"));
    assert!(text.contains("kdv_pyramid_renders_total{level=\"full\"}"));
    assert!(text.contains("kdv_pyramid_tau_fallback_pixels_total"));

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tau_tiles_match_a_pyramid_free_server_bit_for_bit() {
    // Certified decisions agree with the full index outside the band
    // and the band re-decides on it, so the PNGs must be identical.
    let pyra_dir = temp_store("tau-pyra");
    let flat_dir = temp_store("tau-flat");
    let f = write_fixture(&pyra_dir, true);
    let flat = write_fixture(&flat_dir, false);
    assert_eq!(f.points.coords(), flat.points.coords(), "same fixture");

    let pyra = TileServer::start_with_store(config(&f), &pyra_dir).expect("start pyramid");
    let flat = TileServer::start_with_store(config(&f), &flat_dir).expect("start flat");

    for (z, x, y) in [
        (0u32, 0u32, 0u32),
        (1, 0, 0),
        (1, 1, 0),
        (1, 0, 1),
        (1, 1, 1),
    ] {
        let path = format!("/tiles/crime/tau/{z}/{x}/{y}.png");
        let (status, headers, from_level) = get(pyra.local_addr(), &path);
        assert_eq!(status, 200, "{path}");
        assert_ne!(
            header(&headers, "X-Kdv-Level"),
            Some("full"),
            "{path}: pyramid server must actually use a level"
        );
        let (status, headers, from_full) = get(flat.local_addr(), &path);
        assert_eq!(status, 200, "{path}");
        assert_eq!(header(&headers, "X-Kdv-Level"), Some("full"));
        assert_eq!(from_level, from_full, "{path}: masks diverged");
    }

    pyra.stop();
    flat.stop();
    std::fs::remove_dir_all(&pyra_dir).ok();
    std::fs::remove_dir_all(&flat_dir).ok();
}

#[test]
fn ingest_merges_over_the_level_and_compaction_recertifies_the_ladder() {
    let dir = temp_store("ingest");
    let f = write_fixture(&dir, true);
    let mut cfg = config(&f);
    cfg.compact_points = 16;
    let server = TileServer::start_with_store(cfg, &dir).expect("start");
    let addr = server.local_addr();

    let (status, headers, before) = get(addr, "/tiles/crime/eps/0/0/0.png");
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "X-Kdv-Level"), Some("0"));

    // Heavy appends near existing mass: the delta is visible at z0 and
    // crosses the compaction threshold.
    let anchor = f.points.point(10);
    let body = format!(
        "{{\"append\":[{}]}}",
        (0..20)
            .map(|i| format!("[{},{},0.05]", anchor[0] + 0.02 * i as f64, anchor[1]))
            .collect::<Vec<_>>()
            .join(",")
    );
    let (status, _, resp) = post(addr, "/datasets/crime/points", &body);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&resp));

    // The very next render — whether the memtable is still pending or
    // compaction already folded it — still comes from a level and
    // reflects the writes.
    let (status, headers, after) = get(addr, "/tiles/crime/eps/0/0/0.png");
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "X-Kdv-Level"), Some("0"));
    assert_ne!(before, after, "the appended mass must show at z0");

    // Wait for the fold, then prove the rewritten snapshot carries a
    // re-certified PYRA ladder of the same shape.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, _, body) = get(addr, "/datasets/crime/stats");
        assert_eq!(status, 200);
        let doc = json::parse(std::str::from_utf8(&body).expect("utf8")).expect("stats");
        let applied = doc
            .get("applied_seq")
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        let ops = doc
            .get("ingest")
            .and_then(|i| i.get("ops"))
            .and_then(Value::as_f64)
            .unwrap_or(f64::MAX);
        if applied >= 1.0 && ops == 0.0 {
            break;
        }
        assert!(Instant::now() < deadline, "compaction never landed");
        std::thread::sleep(Duration::from_millis(50));
    }
    server.stop();

    let snap = Snapshot::open(dir.join("crime.kdvs")).expect("folded snapshot opens");
    assert_eq!(snap.tree.points().len(), 4020, "base absorbed the appends");
    assert_eq!(
        snap.coresets.iter().map(PointSet::len).collect::<Vec<_>>(),
        [400, 1000],
        "ladder shape survived compaction"
    );
    assert_eq!(snap.level_bounds.len(), 2, "levels are certified");
    assert!(snap.level_bounds.windows(2).all(|w| w[0] > w[1]));

    // A restart serves pyramid tiles straight from the folded
    // snapshot. The re-certified coarse bound may have drifted past
    // ε/2, so any level — just not the full index — is correct.
    let server = TileServer::start_with_store(config(&f), &dir).expect("restart");
    let (status, headers, _) = get(server.local_addr(), "/tiles/crime/eps/0/0/0.png");
    assert_eq!(status, 200);
    let restarted = header(&headers, "X-Kdv-Level").expect("level header");
    assert_ne!(restarted, "full", "folded snapshot still serves a level");
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

//! Streaming-ingest end-to-end: durable acks that survive a stop +
//! restart bit-for-bit, MBR-scoped cache invalidation, body/memtable
//! backpressure, compaction folding, and graceful shutdown under a
//! write storm. The kill-anywhere crash harness (SIGKILL + WAL
//! tampering) lives in the CLI crate where a real child process is
//! available.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kdv_core::bandwidth::scott_gamma;
use kdv_core::kernel::{Kernel, KernelType};
use kdv_data::Dataset;
use kdv_geom::PointSet;
use kdv_index::KdTree;
use kdv_server::{ServerConfig, TileServer};
use kdv_store::{FsyncPolicy, SnapshotWriter};
use kdv_telemetry::json::{self, Value};

fn request(addr: SocketAddr, raw: String) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head");
    let head = std::str::from_utf8(&raw[..split]).expect("head UTF-8");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .expect("status line")
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .map(|l| {
            let (name, value) = l.split_once(':').expect("header");
            (name.trim().to_ascii_lowercase(), value.trim().to_string())
        })
        .collect();
    (status, headers, raw[split + 4..].to_vec())
}

fn get(addr: SocketAddr, path: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    request(addr, format!("GET {path} HTTP/1.1\r\nHost: kdv\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    request(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: kdv\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == &name.to_ascii_lowercase())
        .map(|(_, v)| v.as_str())
}

fn json_body(body: &[u8]) -> Value {
    json::parse(std::str::from_utf8(body).expect("utf8")).expect("JSON body")
}

fn num(doc: &Value, key: &str) -> f64 {
    doc.get(key)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("numeric field {key:?} in {doc:?}"))
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kdv-ingest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn crime_points() -> PointSet {
    let mut points = Dataset::Crime.generate(2000, 7);
    points.scale_weights(1.0 / points.len() as f64);
    points
}

fn write_snapshot(dir: &Path, name: &str, points: &PointSet, kernel: Kernel) {
    let tree = KdTree::build_default(points);
    SnapshotWriter::new(&tree, kernel)
        .write_to(dir.join(format!("{name}.kdvs")))
        .expect("write snapshot");
}

fn config() -> ServerConfig {
    ServerConfig {
        tile_size: 32,
        max_z: 2,
        eps: 0.2,
        tau: 1e-3,
        workers: 4,
        queue: 32,
        allow_shutdown: true,
        // Keep compaction out of tests that don't ask for it.
        memtable_points: 8192,
        compact_points: 8192,
        ..ServerConfig::default()
    }
}

fn stats(addr: SocketAddr, name: &str) -> Value {
    let (status, _, body) = get(addr, &format!("/datasets/{name}/stats"));
    assert_eq!(status, 200, "stats status");
    json_body(&body)
}

fn ingest_field(doc: &Value, key: &str) -> f64 {
    num(doc.get("ingest").expect("ingest block"), key)
}

/// The acked-write durability contract: every acknowledged point is
/// present after a stop + restart, and the recovered server renders
/// the *same bytes* as it did before going down.
#[test]
fn acked_writes_survive_restart_bit_for_bit() {
    let dir = temp_store("durable");
    let points = crime_points();
    let kernel = Kernel::gaussian(scott_gamma(&points).gamma);
    write_snapshot(&dir, "crime", &points, kernel);

    let server = TileServer::start_with_store(config(), &dir).expect("start");
    let addr = server.local_addr();

    // A batch of heavy appends near existing mass plus one tombstone
    // of a real base coordinate: both op kinds go through the WAL.
    let anchor = points.point(10);
    let victim = points.point(0);
    let appends: Vec<String> = (0..5)
        .map(|i| {
            format!(
                "[{},{},0.2]",
                anchor[0] + 0.01 * i as f64,
                anchor[1] + 0.01 * i as f64
            )
        })
        .collect();
    let body = format!(
        "{{\"append\":[{}],\"remove\":[[{},{}]]}}",
        appends.join(","),
        victim[0],
        victim[1]
    );
    let (status, _, resp) = post(addr, "/datasets/crime/points", &body);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&resp));
    let ack = json_body(&resp);
    assert_eq!(ack.get("acked"), Some(&Value::Bool(true)));
    assert_eq!(num(&ack, "seq"), 2.0, "append then tombstone");

    let doc = stats(addr, "crime");
    assert_eq!(num(&doc, "base_points"), 2000.0);
    assert_eq!(ingest_field(&doc, "appends"), 5.0);
    assert_eq!(ingest_field(&doc, "removed"), 1.0);
    assert_eq!(ingest_field(&doc, "last_seq"), 2.0);
    assert_eq!(ingest_field(&doc, "durable_seq"), 2.0);

    let (status, _, before) = get(addr, "/tiles/crime/eps/0/0/0.png");
    assert_eq!(status, 200);
    server.stop();

    // Same directory, fresh process state: the WAL replays.
    let server = TileServer::start_with_store(config(), &dir).expect("restart");
    let addr = server.local_addr();
    let doc = stats(addr, "crime");
    assert_eq!(ingest_field(&doc, "appends"), 5.0, "replayed appends");
    assert_eq!(ingest_field(&doc, "removed"), 1.0, "replayed tombstone");
    assert_eq!(ingest_field(&doc, "last_seq"), 2.0);
    let (status, _, after) = get(addr, "/tiles/crime/eps/0/0/0.png");
    assert_eq!(status, 200);
    assert_eq!(before, after, "recovered render differs from pre-crash");

    let (_, _, body) = get(addr, "/metrics");
    let doc = json_body(&body);
    let ingest = doc.get("ingest").expect("ingest metrics");
    assert_eq!(num(ingest, "replays"), 1.0);
    assert_eq!(num(ingest, "replayed_records"), 2.0);
    server.stop();
}

/// Finite-support kernels invalidate only the tiles a write can
/// reach: a far-away cached tile survives as a hit, the touched one
/// is re-rendered.
#[test]
fn cache_invalidation_is_scoped_by_the_kernel_support() {
    let dir = temp_store("invalidate");
    // A uniform 20×20 grid over [0, 95]²; Epanechnikov with γ = 1 has
    // support radius 1 — far smaller than a z=2 tile (~26 units).
    let mut coords = Vec::new();
    for i in 0..20 {
        for j in 0..20 {
            coords.push(5.0 * i as f64);
            coords.push(5.0 * j as f64);
        }
    }
    let n = coords.len() / 2;
    let points = PointSet::from_vecs(2, coords, vec![1.0 / n as f64; n]);
    write_snapshot(
        &dir,
        "grid",
        &points,
        Kernel::new(KernelType::Epanechnikov, 1.0),
    );

    let server = TileServer::start_with_store(config(), &dir).expect("start");
    let addr = server.local_addr();

    // Warm two opposite corners at z=2. Row 0 is the *top* (max y),
    // so the low-x/low-y corner is tile (0, 3).
    for path in ["/tiles/grid/eps/2/0/3.png", "/tiles/grid/eps/2/3/0.png"] {
        let (status, _, _) = get(addr, path);
        assert_eq!(status, 200, "{path}");
    }
    let (_, headers, _) = get(addr, "/tiles/grid/eps/2/3/0.png");
    assert_eq!(header(&headers, "X-Kdv-Cache"), Some("hit"));

    // Write near the low corner: only tile (0, 3) can change.
    let (status, _, resp) = post(
        addr,
        "/datasets/grid/points",
        "{\"append\":[[2.0,2.0,0.5]]}",
    );
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&resp));
    let ack = json_body(&resp);
    assert!(
        num(&ack, "invalidated_tiles") >= 1.0,
        "the touched corner must be dropped"
    );

    let (_, headers, _) = get(addr, "/tiles/grid/eps/2/3/0.png");
    assert_eq!(
        header(&headers, "X-Kdv-Cache"),
        Some("hit"),
        "far corner is beyond the kernel support and must stay cached"
    );
    let (_, headers, _) = get(addr, "/tiles/grid/eps/2/0/3.png");
    assert_eq!(
        header(&headers, "X-Kdv-Cache"),
        Some("miss"),
        "touched corner must be re-rendered"
    );
    server.stop();
}

/// Backpressure fires *before* any WAL write: oversized bodies get
/// 413, a full memtable gets 429, both with a Retry-After hint, and
/// CSV-backed datasets refuse ingest outright.
#[test]
fn rejects_oversized_bodies_and_full_memtables_before_the_wal() {
    let dir = temp_store("backpressure");
    let points = crime_points();
    write_snapshot(
        &dir,
        "crime",
        &points,
        Kernel::gaussian(scott_gamma(&points).gamma),
    );
    kdv_data::csv::save(&dir.join("raw.csv"), &points, false).expect("write csv");

    let mut cfg = config();
    cfg.ingest_max_body = 256;
    cfg.memtable_points = 8;
    cfg.compact_points = 8;
    let server = TileServer::start_with_store(cfg, &dir).expect("start");
    let addr = server.local_addr();

    // Declared body over the cap: refused before the body is read.
    let big = format!("{{\"append\":[{}]}}", vec!["[1.0,1.0,1.0]"; 40].join(","));
    assert!(big.len() > 256);
    let (status, headers, _) = post(addr, "/datasets/crime/points", &big);
    assert_eq!(status, 413);
    assert_eq!(header(&headers, "Retry-After"), Some("1"));

    // Six points fit; six more would overflow the 8-point memtable.
    let six = format!(
        "{{\"append\":[{}]}}",
        (0..6)
            .map(|i| format!("[{}.0,1.0,0.1]", i))
            .collect::<Vec<_>>()
            .join(",")
    );
    let (status, _, resp) = post(addr, "/datasets/crime/points", &six);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&resp));
    let (status, headers, _) = post(addr, "/datasets/crime/points", &six);
    assert_eq!(status, 429);
    assert_eq!(header(&headers, "Retry-After"), Some("1"));

    // Nothing past the first batch reached the WAL.
    let doc = stats(addr, "crime");
    assert_eq!(ingest_field(&doc, "appends"), 6.0);
    assert_eq!(ingest_field(&doc, "last_seq"), 1.0);

    // CSV-backed slots have no snapshot to compact into.
    let (status, _, _) = post(addr, "/datasets/raw/points", "{\"append\":[[1.0,1.0,1.0]]}");
    assert_eq!(status, 400);
    // Unknown datasets and malformed bodies are refused too.
    let (status, _, _) = post(
        addr,
        "/datasets/nope/points",
        "{\"append\":[[1.0,1.0,1.0]]}",
    );
    assert_eq!(status, 404);
    let (status, _, _) = post(addr, "/datasets/crime/points", "{\"append\":[[1.0]]}");
    assert_eq!(status, 400);

    let (_, _, body) = get(addr, "/metrics");
    let ingest = json_body(&body);
    let ingest = ingest.get("ingest").expect("ingest metrics");
    assert_eq!(num(ingest, "rejected_too_large"), 1.0);
    assert_eq!(num(ingest, "rejected_backpressure"), 1.0);
    server.stop();
}

/// Writes that could never compact are refused before anything is
/// acknowledged: non-positive append weights (the merged point set
/// asserts weights ≥ 0 at fold time, long after the ack) and
/// tombstone batches that would empty the dataset (an empty dataset
/// has no buildable index, so compaction would fail on every trigger
/// and the memtable could never drain).
#[test]
fn rejects_poison_weights_and_emptying_tombstones() {
    let dir = temp_store("poison");
    let points = PointSet::from_vecs(2, vec![0.0, 0.0, 8.0, 8.0], vec![0.5, 0.5]);
    write_snapshot(
        &dir,
        "tiny",
        &points,
        Kernel::new(KernelType::Epanechnikov, 1.0),
    );
    let server = TileServer::start_with_store(config(), &dir).expect("start");
    let addr = server.local_addr();

    for bad in [
        "{\"append\":[[1.0,1.0,-1.0]]}",
        "{\"append\":[[1.0,1.0,0.0]]}",
    ] {
        let (status, _, resp) = post(addr, "/datasets/tiny/points", bad);
        assert_eq!(status, 400, "{bad}: {}", String::from_utf8_lossy(&resp));
    }

    // Tombstoning every point at once is refused...
    let (status, _, resp) = post(
        addr,
        "/datasets/tiny/points",
        "{\"remove\":[[0.0,0.0],[8.0,8.0]]}",
    );
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&resp));
    // ...and so is finishing the job incrementally.
    let (status, _, resp) = post(addr, "/datasets/tiny/points", "{\"remove\":[[0.0,0.0]]}");
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&resp));
    let ack = json_body(&resp);
    assert_eq!(num(&ack, "seq"), 1.0, "rejected writes consumed no seq");
    let (status, _, _) = post(addr, "/datasets/tiny/points", "{\"remove\":[[8.0,8.0]]}");
    assert_eq!(status, 400);
    // A batch whose appends outlive its removes keeps the dataset
    // alive and is accepted.
    let (status, _, resp) = post(
        addr,
        "/datasets/tiny/points",
        "{\"append\":[[4.0,4.0,0.5]],\"remove\":[[8.0,8.0]]}",
    );
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&resp));

    let doc = stats(addr, "tiny");
    assert_eq!(
        num(&doc, "points_live"),
        1.0,
        "one base point survives + one append - one removed"
    );
    server.stop();
}

/// Compaction folds the memtable into a new snapshot: the WAL shrinks
/// to nothing, the base grows, and a restart lands on the folded
/// snapshot with an identical render.
#[test]
fn compaction_folds_the_memtable_and_survives_restart() {
    let dir = temp_store("compact");
    let points = crime_points();
    write_snapshot(
        &dir,
        "crime",
        &points,
        Kernel::gaussian(scott_gamma(&points).gamma),
    );

    let mut cfg = config();
    cfg.compact_points = 16;
    let server = TileServer::start_with_store(cfg.clone(), &dir).expect("start");
    let addr = server.local_addr();

    let anchor = points.point(10);
    let body = format!(
        "{{\"append\":[{}]}}",
        (0..20)
            .map(|i| format!("[{},{},0.05]", anchor[0] + 0.02 * i as f64, anchor[1]))
            .collect::<Vec<_>>()
            .join(",")
    );
    let (status, _, resp) = post(addr, "/datasets/crime/points", &body);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&resp));

    // The 20-point batch crosses the 16-point threshold; wait for the
    // background fold to land.
    let deadline = Instant::now() + Duration::from_secs(30);
    let folded = loop {
        let doc = stats(addr, "crime");
        if num(&doc, "applied_seq") >= 1.0 && ingest_field(&doc, "ops") == 0.0 {
            break doc;
        }
        assert!(
            Instant::now() < deadline,
            "compaction never landed: {doc:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(num(&folded, "base_points"), 2020.0);
    assert_eq!(ingest_field(&folded, "appends"), 0.0);

    let (status, _, before) = get(addr, "/tiles/crime/eps/0/0/0.png");
    assert_eq!(status, 200);
    server.stop();

    let server = TileServer::start_with_store(cfg, &dir).expect("restart");
    let addr = server.local_addr();
    let doc = stats(addr, "crime");
    assert_eq!(num(&doc, "base_points"), 2020.0, "folded base persisted");
    assert_eq!(ingest_field(&doc, "appends"), 0.0, "WAL was truncated");
    let (status, _, after) = get(addr, "/tiles/crime/eps/0/0/0.png");
    assert_eq!(status, 200);
    assert_eq!(before, after, "folded render differs across restart");
    server.stop();
}

/// Graceful shutdown under a write storm: every write acked before
/// the stop is durable, and the server never acks a write it then
/// loses. Batch fsync exercises the group-commit path under real
/// concurrency.
#[test]
fn shutdown_under_load_keeps_every_acked_point() {
    let dir = temp_store("shutdown");
    let points = crime_points();
    write_snapshot(
        &dir,
        "crime",
        &points,
        Kernel::gaussian(scott_gamma(&points).gamma),
    );

    let mut cfg = config();
    cfg.fsync = FsyncPolicy::Batch;
    let server = TileServer::start_with_store(cfg.clone(), &dir).expect("start");
    let addr = server.local_addr();
    let acked = Arc::new(AtomicUsize::new(0));
    const WRITERS: usize = 4;

    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let acked = Arc::clone(&acked);
        handles.push(std::thread::spawn(move || {
            for i in 0..10_000usize {
                let x = 10.0 + w as f64;
                let body = format!("{{\"append\":[[{x},{}.0,0.001]]}}", i % 50);
                let sent = format!(
                    "POST /datasets/crime/points HTTP/1.1\r\nHost: kdv\r\n\
                     Content-Length: {}\r\n\r\n{body}",
                    body.len()
                );
                let Ok(mut stream) = TcpStream::connect(addr) else {
                    break;
                };
                let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
                if stream.write_all(sent.as_bytes()).is_err() {
                    break;
                }
                let mut raw = Vec::new();
                if stream.read_to_end(&mut raw).is_err() || !raw.starts_with(b"HTTP/1.1 200") {
                    break;
                }
                acked.fetch_add(1, Ordering::SeqCst);
            }
        }));
    }
    std::thread::sleep(Duration::from_millis(300));
    server.stop();
    for h in handles {
        h.join().expect("writer thread");
    }
    let acked = acked.load(Ordering::SeqCst);
    assert!(acked > 0, "no write ever succeeded");

    let server = TileServer::start_with_store(cfg, &dir).expect("restart");
    let doc = stats(server.local_addr(), "crime");
    let recovered = ingest_field(&doc, "appends") as usize;
    assert!(
        recovered >= acked,
        "acked {acked} appends but recovered only {recovered}"
    );
    assert!(
        recovered <= acked + WRITERS,
        "recovered {recovered} appends with only {acked} acked (+{WRITERS} possibly in flight)"
    );
    server.stop();
}

//! Catalog serving end-to-end: a store directory of snapshots + CSV
//! fallbacks behind `/tiles/{dataset}/…`, lazy loads, corruption
//! answered with structured 500s (and healed by replacing the file),
//! and byte-budget eviction — all observable through `/metrics`.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

use kdv_core::bandwidth::scott_gamma;
use kdv_core::kernel::Kernel;
use kdv_data::Dataset;
use kdv_index::KdTree;
use kdv_server::{ServerConfig, TileServer};
use kdv_store::SnapshotWriter;
use kdv_telemetry::json::{self, Value};

fn get(addr: SocketAddr, path: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: kdv\r\n\r\n").as_bytes())
        .expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head");
    let head = std::str::from_utf8(&raw[..split]).expect("head UTF-8");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, raw[split + 4..].to_vec())
}

fn write_snapshot(dir: &Path, name: &str, dataset: Dataset, n: usize, seed: u64) -> PathBuf {
    let mut points = dataset.generate(n, seed);
    points.scale_weights(1.0 / points.len() as f64);
    let kernel = Kernel::gaussian(scott_gamma(&points).gamma);
    let tree = KdTree::build_default(&points);
    let path = dir.join(format!("{name}.kdvs"));
    SnapshotWriter::new(&tree, kernel)
        .write_to(&path)
        .expect("write snapshot");
    path
}

fn write_csv(dir: &Path, name: &str, dataset: Dataset, n: usize, seed: u64) {
    let points = dataset.generate(n, seed);
    kdv_data::csv::save(&dir.join(format!("{name}.csv")), &points, false).expect("write csv");
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kdv-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn config() -> ServerConfig {
    ServerConfig {
        tile_size: 32,
        max_z: 2,
        eps: 0.2,
        tau: 1e-3,
        workers: 4,
        queue: 32,
        allow_shutdown: true,
        ..ServerConfig::default()
    }
}

fn metrics(addr: SocketAddr) -> Value {
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    json::parse(std::str::from_utf8(&body).expect("utf8")).expect("metrics JSON")
}

#[test]
fn serves_a_catalog_of_snapshots_and_csv_fallbacks() {
    let dir = temp_store("catalog");
    write_snapshot(&dir, "crime", Dataset::Crime, 2000, 7);
    write_snapshot(&dir, "home", Dataset::Home, 1500, 9);
    write_csv(&dir, "elnino", Dataset::ElNino, 1200, 11);

    let server = TileServer::start_with_store(config(), &dir).expect("start");
    let addr = server.local_addr();
    assert_eq!(server.dataset_names(), ["crime", "elnino", "home"]);
    assert_eq!(server.startup().source, "catalog");

    // Nothing is materialized before the first touch.
    let doc = metrics(addr);
    let store = doc.get("store").expect("store block");
    assert_eq!(store.get("loads").and_then(Value::as_f64), Some(0.0));
    for row in store
        .get("catalog")
        .and_then(Value::as_arr)
        .expect("catalog")
    {
        assert_eq!(row.get("state").and_then(Value::as_str), Some("cold"));
    }

    // One tile per dataset, both kinds for one of them.
    for path in [
        "/tiles/crime/eps/0/0/0.png",
        "/tiles/crime/tau/1/1/0.png",
        "/tiles/home/eps/0/0/0.png",
        "/tiles/elnino/eps/0/0/0.png",
    ] {
        let (status, body) = get(addr, path);
        assert_eq!(status, 200, "{path}");
        assert!(body.starts_with(b"\x89PNG"), "{path}: not a PNG");
    }

    // Two snapshot loads, one CSV build — each dataset exactly once.
    let doc = metrics(addr);
    let store = doc.get("store").expect("store block");
    assert_eq!(store.get("loads").and_then(Value::as_f64), Some(2.0));
    assert_eq!(store.get("builds").and_then(Value::as_f64), Some(1.0));
    assert_eq!(
        store.get("load_failures").and_then(Value::as_f64),
        Some(0.0)
    );
    for row in store
        .get("catalog")
        .and_then(Value::as_arr)
        .expect("catalog")
    {
        assert_eq!(row.get("state").and_then(Value::as_str), Some("ready"));
        let source = row.get("source").and_then(Value::as_str).expect("source");
        let kind = row.get("kind").and_then(Value::as_str).expect("kind");
        match kind {
            "snapshot" => assert_eq!(source, "snapshot"),
            "csv" => assert_eq!(source, "built"),
            other => panic!("unexpected kind {other}"),
        }
        assert!(row.get("bytes").and_then(Value::as_f64).expect("bytes") > 0.0);
    }

    // Unknown datasets are 404, not 500; dataset-less paths are 400.
    assert_eq!(get(addr, "/tiles/nope/eps/0/0/0.png").0, 404);
    assert_eq!(get(addr, "/tiles/eps/0/0/0.png").0, 400);

    // Same dataset again: served from cache or at least without a
    // second materialization.
    let (status, _) = get(addr, "/tiles/crime/eps/0/0/0.png");
    assert_eq!(status, 200);
    let doc = metrics(addr);
    let store = doc.get("store").expect("store block");
    assert_eq!(store.get("loads").and_then(Value::as_f64), Some(2.0));

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_snapshot_is_a_structured_500_and_heals_on_replacement() {
    let dir = temp_store("corrupt");
    let path = write_snapshot(&dir, "crime", Dataset::Crime, 1000, 3);
    let clean = std::fs::read(&path).expect("read snapshot");
    let mut bad = clean.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0xFF;
    std::fs::write(&path, &bad).expect("corrupt snapshot");

    let server = TileServer::start_with_store(config(), &dir).expect("start");
    let addr = server.local_addr();

    // The flip lands in a section payload: a checksum failure, reported
    // as a structured 500 (never a panic, never a wrong tile).
    let (status, body) = get(addr, "/tiles/crime/eps/0/0/0.png");
    assert_eq!(status, 500);
    let message = String::from_utf8(body).expect("utf8 error body");
    assert!(
        message.contains("checksum") || message.contains("section"),
        "unstructured error: {message}"
    );
    let doc = metrics(addr);
    let store = doc.get("store").expect("store block");
    assert_eq!(
        store.get("load_failures").and_then(Value::as_f64),
        Some(1.0)
    );
    assert_eq!(
        store.get("checksum_failures").and_then(Value::as_f64),
        Some(1.0)
    );

    // Failure is not cached: restoring the bytes heals the dataset
    // without a restart.
    std::fs::write(&path, &clean).expect("restore snapshot");
    let (status, body) = get(addr, "/tiles/crime/eps/0/0/0.png");
    assert_eq!(status, 200);
    assert!(body.starts_with(b"\x89PNG"));

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn idle_datasets_are_evicted_under_the_byte_budget() {
    let dir = temp_store("evict");
    write_snapshot(&dir, "a", Dataset::Crime, 2000, 1);
    write_snapshot(&dir, "b", Dataset::Home, 2000, 2);

    // A budget big enough for one materialized dataset (~85 KB of
    // points + arena at n = 2000) but not two.
    let mut cfg = config();
    cfg.store_budget_bytes = 128 << 10;
    let server = TileServer::start_with_store(cfg, &dir).expect("start");
    let addr = server.local_addr();

    assert_eq!(get(addr, "/tiles/a/eps/0/0/0.png").0, 200);
    assert_eq!(get(addr, "/tiles/b/eps/0/0/0.png").0, 200);

    // Loading `b` pushed the ready set over budget; idle `a` went cold.
    let doc = metrics(addr);
    let store = doc.get("store").expect("store block");
    assert!(
        store
            .get("evictions")
            .and_then(Value::as_f64)
            .expect("evictions")
            >= 1.0
    );
    let rows = store
        .get("catalog")
        .and_then(Value::as_arr)
        .expect("catalog");
    let state_of = |name: &str| {
        rows.iter()
            .find(|r| r.get("dataset").and_then(Value::as_str) == Some(name))
            .and_then(|r| r.get("state"))
            .and_then(Value::as_str)
            .map(str::to_string)
    };
    assert_eq!(state_of("a").as_deref(), Some("cold"));
    assert_eq!(state_of("b").as_deref(), Some("ready"));

    // Touching `a` again reloads it transparently (and evicts `b`).
    assert_eq!(get(addr, "/tiles/a/eps/1/0/0.png").0, 200);
    let doc = metrics(addr);
    let loads = doc
        .get("store")
        .and_then(|s| s.get("loads"))
        .and_then(Value::as_f64)
        .expect("loads");
    assert_eq!(loads, 3.0, "a, b, then a again");

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn preload_holds_readyz_at_503_until_every_dataset_materializes() {
    let dir = temp_store("preload");
    write_snapshot(&dir, "a", Dataset::Crime, 1500, 1);
    write_snapshot(&dir, "b", Dataset::Home, 1500, 2);

    let mut cfg = config();
    cfg.preload = true;
    let server = TileServer::start_with_store(cfg, &dir).expect("start");
    let addr = server.local_addr();

    // Liveness is immediate; readiness flips only after the preload
    // thread has walked the whole catalog. Poll until it does (the
    // 503 window is real but may already be over on a fast machine).
    assert_eq!(get(addr, "/healthz").0, 200);
    let mut status = 0;
    for _ in 0..500 {
        status = get(addr, "/readyz").0;
        assert!(status == 200 || status == 503, "readyz answered {status}");
        if status == 200 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(status, 200, "preload never completed");

    // Ready means both datasets loaded — no cold entries left.
    let doc = metrics(addr);
    let store = doc.get("store").expect("store block");
    assert_eq!(store.get("loads").and_then(Value::as_f64), Some(2.0));
    for row in store
        .get("catalog")
        .and_then(Value::as_arr)
        .expect("catalog")
    {
        assert_eq!(row.get("state").and_then(Value::as_str), Some("ready"));
    }

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

//! End-to-end tests: a real server on a real socket, driven by a tiny
//! std-only HTTP client.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use kdv_core::bandwidth::scott_gamma;
use kdv_core::engine::BudgetPolicy;
use kdv_core::kernel::Kernel;
use kdv_core::raster::RasterSpec;
use kdv_core::threshold::estimate_levels;
use kdv_data::Dataset;
use kdv_geom::PointSet;
use kdv_index::KdTree;
use kdv_server::{ServerConfig, TileServer};
use kdv_telemetry::json::{self, Value};

/// One blocking GET; returns (status, headers, body).
fn get(addr: SocketAddr, path: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: kdv\r\n\r\n").as_bytes())
        .expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head");
    let head = std::str::from_utf8(&raw[..split]).expect("head is UTF-8");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .map(|l| {
            let (name, value) = l.split_once(':').expect("header");
            (name.trim().to_ascii_lowercase(), value.trim().to_string())
        })
        .collect();
    (status, headers, raw[split + 4..].to_vec())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == &name.to_ascii_lowercase())
        .map(|(_, v)| v.as_str())
}

/// Asserts PNG magic + IHDR dimensions.
fn assert_png(body: &[u8], size: u32, context: &str) {
    assert!(
        body.starts_with(b"\x89PNG\r\n\x1a\n"),
        "{context}: not a PNG ({} bytes)",
        body.len()
    );
    let w = u32::from_be_bytes(body[16..20].try_into().expect("IHDR width"));
    let h = u32::from_be_bytes(body[20..24].try_into().expect("IHDR height"));
    assert_eq!((w, h), (size, size), "{context}: wrong tile dimensions");
}

struct Fixture {
    points: PointSet,
    kernel: Kernel,
    tau: f64,
}

fn fixture() -> Fixture {
    let mut points = Dataset::Crime.generate(2500, 7);
    points.scale_weights(1.0 / points.len() as f64);
    let kernel = Kernel::gaussian(scott_gamma(&points).gamma);
    let tree = KdTree::build_default(&points);
    let raster = RasterSpec::covering(&points, 48, 48, 0.05);
    let tau = estimate_levels(&tree, kernel, &raster, 32, 32).tau(0.1);
    Fixture {
        points,
        kernel,
        tau,
    }
}

fn config(f: &Fixture) -> ServerConfig {
    ServerConfig {
        tile_size: 32,
        max_z: 4,
        eps: 0.2,
        tau: f.tau,
        workers: 4,
        queue: 32,
        cache_bytes: 16 << 20,
        cache_shards: 4,
        allow_shutdown: true,
        ..ServerConfig::default()
    }
}

#[test]
fn serves_the_full_pyramid_concurrently_with_cache_reuse() {
    let f = fixture();
    let server = TileServer::start(config(&f), &f.points, f.kernel).expect("start");
    let addr = server.local_addr();

    // Every tile of every level z ≤ 4, both kinds, fetched from eight
    // concurrent clients.
    let mut paths = Vec::new();
    for kind in ["eps", "tau"] {
        for z in 0..=4u32 {
            for x in 0..1 << z {
                for y in 0..1 << z {
                    paths.push(format!("/tiles/{kind}/{z}/{x}/{y}.png"));
                }
            }
        }
    }
    let total = paths.len();
    assert_eq!(total, 2 * (1 + 4 + 16 + 64 + 256));
    let paths = Arc::new(paths);
    let mut handles = Vec::new();
    for t in 0..8usize {
        let paths = Arc::clone(&paths);
        handles.push(std::thread::spawn(move || {
            for path in paths.iter().skip(t).step_by(8) {
                let (status, _, body) = get(addr, path);
                assert_eq!(status, 200, "{path}");
                assert_png(&body, 32, path);
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }

    // A repeat fetch is served from the cache.
    let (status, headers, body) = get(addr, "/tiles/eps/2/1/1.png");
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "X-Kdv-Cache"), Some("hit"));
    assert_png(&body, 32, "cached tile");

    // /metrics proves it: every unique tile missed once, the repeat hit.
    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let doc = json::parse(std::str::from_utf8(&body).expect("utf8")).expect("metrics JSON");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("kdv-serve-metrics/6")
    );
    // Startup accounting is present and self-consistent.
    let startup = doc.get("startup").expect("startup block");
    assert_eq!(startup.get("source").and_then(Value::as_str), Some("built"));
    let startup_total = startup
        .get("total_ms")
        .and_then(Value::as_f64)
        .expect("total_ms");
    let parts: f64 = ["data_load_ms", "index_ms", "warm_ms"]
        .iter()
        .map(|k| startup.get(k).and_then(Value::as_f64).expect(k))
        .sum();
    assert_eq!(startup_total, parts, "startup splits sum to the total");
    // Single-dataset mode still reports its catalog: one preloaded,
    // ready dataset.
    let store = doc.get("store").expect("store block");
    let catalog = store
        .get("catalog")
        .and_then(Value::as_arr)
        .expect("catalog array");
    assert_eq!(catalog.len(), 1);
    assert_eq!(
        catalog[0].get("state").and_then(Value::as_str),
        Some("ready")
    );
    let cache = doc.get("cache").expect("cache block");
    let hits = cache.get("hits").and_then(Value::as_f64).expect("hits");
    let misses = cache.get("misses").and_then(Value::as_f64).expect("misses");
    assert_eq!(misses, total as f64, "each unique tile rendered once");
    assert!(hits >= 1.0, "the repeat fetch hit");
    assert!(
        cache
            .get("bytes_used")
            .and_then(Value::as_f64)
            .expect("bytes")
            > 0.0
    );
    let http = doc.get("http").expect("http block");
    let ok = http.get("ok").and_then(Value::as_f64).expect("ok");
    assert!(ok >= (total + 1) as f64);
    assert_eq!(http.get("rejected").and_then(Value::as_f64), Some(0.0));
    // Live refinement telemetry flowed through the merge.
    let render = doc.get("render").expect("render block");
    let pixels = render
        .get("pixels")
        .and_then(Value::as_f64)
        .expect("pixels");
    assert!(pixels > 0.0, "tile renders metered pixels");

    server.stop();
}

#[test]
fn parent_frontiers_seed_child_tau_tiles() {
    let f = fixture();
    let server = TileServer::start(config(&f), &f.points, f.kernel).expect("start");
    let addr = server.local_addr();
    // Walk the pyramid top-down along one branch; children must agree
    // with their parent's corner pixel. z0's top-left quadrant is
    // z1(0,0)'s whole tile — compare the shared top-left corner pixel
    // by decoding nothing: just re-request and require determinism.
    let (_, _, first) = get(addr, "/tiles/tau/0/0/0.png");
    for _ in 0..2 {
        let (status, headers, body) = get(addr, "/tiles/tau/0/0/0.png");
        assert_eq!(status, 200);
        assert_eq!(header(&headers, "X-Kdv-Cache"), Some("hit"));
        assert_eq!(body, first, "cached tile bytes are stable");
    }
    // Descend: parents before children, so the frontier map is warm.
    for z in 0..=3u32 {
        let (status, _, body) = get(addr, &format!("/tiles/tau/{z}/0/0.png"));
        assert_eq!(status, 200);
        assert_png(&body, 32, "tau descent");
    }
    server.stop();
}

#[test]
fn malformed_addresses_get_400_and_unknown_paths_404() {
    let f = fixture();
    let server = TileServer::start(config(&f), &f.points, f.kernel).expect("start");
    let addr = server.local_addr();
    for bad in [
        "/tiles/eps/1/5/0.png",
        "/tiles/eps/9/0/0.png",
        "/tiles/nope/0/0/0.png",
        "/tiles/eps/0/0/0",
        "/tiles/eps/01/0/0.png",
        "/tiles/eps/0/0/0.png/extra",
    ] {
        let (status, _, _) = get(addr, bad);
        assert_eq!(status, 400, "{bad}");
    }
    let (status, _, _) = get(addr, "/definitely/not/here");
    assert_eq!(status, 404);
    let (status, _, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, b"ok");

    let (_, _, body) = get(addr, "/metrics");
    let doc = json::parse(std::str::from_utf8(&body).expect("utf8")).expect("JSON");
    let http = doc.get("http").expect("http");
    assert_eq!(http.get("bad_request").and_then(Value::as_f64), Some(6.0));
    assert_eq!(http.get("not_found").and_then(Value::as_f64), Some(1.0));
    server.stop();
}

#[test]
fn budget_exhaustion_degrades_with_header_and_skips_the_cache() {
    let f = fixture();
    let mut cfg = config(&f);
    // A work cap far below one tile's needs: every ε tile degrades.
    cfg.policy = BudgetPolicy::unlimited().with_max_work(32 * 32);
    cfg.eps = 1e-9;
    let server = TileServer::start(cfg, &f.points, f.kernel).expect("start");
    let addr = server.local_addr();

    let (status, headers, body) = get(addr, "/tiles/eps/0/0/0.png");
    assert_eq!(status, 200, "degradation is not an error");
    assert_png(&body, 32, "degraded tile");
    let degraded: u64 = header(&headers, "X-Kdv-Degraded")
        .expect("degraded header present")
        .parse()
        .expect("numeric");
    assert!(degraded > 0);

    // Degraded tiles are never cached: the same request misses again.
    let (_, headers, _) = get(addr, "/tiles/eps/0/0/0.png");
    assert_eq!(header(&headers, "X-Kdv-Cache"), Some("miss"));

    let (_, _, body) = get(addr, "/metrics");
    let doc = json::parse(std::str::from_utf8(&body).expect("utf8")).expect("JSON");
    let http = doc.get("http").expect("http");
    assert_eq!(http.get("degraded").and_then(Value::as_f64), Some(2.0));
    let render = doc.get("render").expect("render");
    assert_eq!(
        render.get("status").and_then(Value::as_str),
        Some("degraded")
    );
    let cache = doc.get("cache").expect("cache");
    assert_eq!(cache.get("insertions").and_then(Value::as_f64), Some(0.0));
    server.stop();
}

#[test]
fn full_queue_answers_429_with_retry_after() {
    let f = fixture();
    let mut cfg = config(&f);
    cfg.workers = 1;
    cfg.queue = 1;
    cfg.debug_sleep = true;
    let server = TileServer::start(cfg, &f.points, f.kernel).expect("start");
    let addr = server.local_addr();

    // Occupy the single worker, then the single queue slot.
    let busy: Vec<_> = (0..2)
        .map(|_| {
            let t = std::thread::spawn(move || get(addr, "/debug/sleep/1500").0);
            std::thread::sleep(Duration::from_millis(300));
            t
        })
        .collect();

    // Worker busy + queue full → the door says 429.
    let mut saw_rejection = false;
    for _ in 0..3 {
        let (status, headers, _) = get(addr, "/healthz");
        if status == 429 {
            assert_eq!(header(&headers, "Retry-After"), Some("1"));
            saw_rejection = true;
            break;
        }
    }
    assert!(saw_rejection, "admission control never rejected");

    for t in busy {
        assert_eq!(t.join().expect("busy client"), 200);
    }
    // Load has passed: requests are admitted again.
    let (status, _, _) = get(addr, "/healthz");
    assert_eq!(status, 200);

    let (_, _, body) = get(addr, "/metrics");
    let doc = json::parse(std::str::from_utf8(&body).expect("utf8")).expect("JSON");
    let rejected = doc
        .get("http")
        .and_then(|h| h.get("rejected"))
        .and_then(Value::as_f64)
        .expect("rejected counter");
    assert!(rejected >= 1.0);
    server.stop();
}

#[test]
fn shutdown_endpoint_stops_the_server_cleanly() {
    let f = fixture();
    let server = TileServer::start(config(&f), &f.points, f.kernel).expect("start");
    let addr = server.local_addr();
    let (status, _, _) = get(addr, "/tiles/eps/0/0/0.png");
    assert_eq!(status, 200);
    let (status, _, _) = get(addr, "/shutdown");
    assert_eq!(status, 200);
    // join() returns because the handler set the shutdown flag; every
    // worker and the accept thread exit.
    server.join();

    // And with the endpoint disabled, /shutdown is a 404.
    let mut cfg = config(&f);
    cfg.allow_shutdown = false;
    let server = TileServer::start(cfg, &f.points, f.kernel).expect("start");
    let addr = server.local_addr();
    let (status, _, _) = get(addr, "/shutdown");
    assert_eq!(status, 404);
    server.stop();
}

//! Observability end-to-end: request traces with the full span
//! taxonomy, slow-trace retention, the JSON-lines access log, the
//! pinned `/metrics` schema, and Prometheus exposition — all through a
//! real server on a real socket.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use kdv_core::bandwidth::scott_gamma;
use kdv_core::kernel::Kernel;
use kdv_data::Dataset;
use kdv_geom::PointSet;
use kdv_server::{ServerConfig, TileServer, STAGES};
use kdv_telemetry::json::{self, Value};

/// One blocking GET; returns (status, headers, body).
fn get(addr: SocketAddr, path: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: kdv\r\n\r\n").as_bytes())
        .expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head");
    let head = std::str::from_utf8(&raw[..split]).expect("head is UTF-8");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .expect("status line")
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .map(|l| {
            let (name, value) = l.split_once(':').expect("header");
            (name.trim().to_ascii_lowercase(), value.trim().to_string())
        })
        .collect();
    (status, headers, raw[split + 4..].to_vec())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == &name.to_ascii_lowercase())
        .map(|(_, v)| v.as_str())
}

fn fixture() -> (PointSet, Kernel) {
    let mut points = Dataset::Crime.generate(1500, 7);
    points.scale_weights(1.0 / points.len() as f64);
    let kernel = Kernel::gaussian(scott_gamma(&points).gamma);
    (points, kernel)
}

fn config() -> ServerConfig {
    ServerConfig {
        tile_size: 32,
        max_z: 3,
        eps: 0.2,
        tau: 1e-3,
        workers: 2,
        queue: 32,
        allow_shutdown: true,
        ..ServerConfig::default()
    }
}

fn json_body(body: &[u8]) -> Value {
    json::parse(std::str::from_utf8(body).expect("utf8")).expect("valid JSON")
}

/// Polls `/debug/traces` until a trace with `id` appears (the worker
/// pushes the trace just after writing the response, so an immediate
/// read can race it).
fn find_trace(addr: SocketAddr, id: &str) -> Value {
    for _ in 0..50 {
        let (status, _, body) = get(addr, "/debug/traces");
        assert_eq!(status, 200);
        let doc = json_body(&body);
        let traces = doc.get("traces").and_then(Value::as_arr).expect("traces");
        if let Some(t) = traces
            .iter()
            .find(|t| t.get("id").and_then(Value::as_str) == Some(id))
        {
            return t.clone();
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("trace {id} never appeared in /debug/traces");
}

fn span_names(trace: &Value) -> Vec<String> {
    trace
        .get("spans")
        .and_then(Value::as_arr)
        .expect("spans")
        .iter()
        .map(|s| {
            s.get("name")
                .and_then(Value::as_str)
                .expect("span name")
                .to_string()
        })
        .collect()
}

fn span<'a>(trace: &'a Value, name: &str) -> Option<&'a Value> {
    trace
        .get("spans")
        .and_then(Value::as_arr)
        .expect("spans")
        .iter()
        .find(|s| s.get("name").and_then(Value::as_str) == Some(name))
}

#[test]
fn cold_tile_trace_covers_the_whole_pipeline_with_work_attribution() {
    let (points, kernel) = fixture();
    let server = TileServer::start(config(), &points, kernel).expect("start");
    let addr = server.local_addr();

    let (status, headers, _) = get(addr, "/tiles/eps/1/0/1.png");
    assert_eq!(status, 200);
    let id = header(&headers, "X-Kdv-Trace-Id")
        .expect("trace header on tile response")
        .to_string();
    assert_eq!(id.len(), 16, "16-hex trace ID, got {id:?}");

    let trace = find_trace(addr, &id);
    assert_eq!(trace.get("method").and_then(Value::as_str), Some("GET"));
    assert_eq!(
        trace.get("path").and_then(Value::as_str),
        Some("/tiles/eps/1/0/1.png")
    );
    assert_eq!(trace.get("status").and_then(Value::as_f64), Some(200.0));
    assert_eq!(trace.get("cache").and_then(Value::as_str), Some("miss"));
    assert!(trace.get("bytes").and_then(Value::as_f64).expect("bytes") > 0.0);

    // The cold path shows every pipeline stage as a named span.
    let names = span_names(&trace);
    for expected in [
        "queue", "parse", "catalog", "cache", "render", "encode", "write",
    ] {
        assert!(
            names.contains(&expected.to_string()),
            "missing span {expected} in {names:?}"
        );
        assert!(
            STAGES.contains(&expected),
            "span {expected} outside the taxonomy"
        );
    }
    assert!(
        names.len() >= 6,
        "cold tile should have ≥6 spans: {names:?}"
    );

    // The render span attributes the refinement work.
    let render = span(&trace, "render").expect("render span");
    let tags = render.get("tags").expect("render tags");
    assert!(
        tags.get("heap_pops")
            .and_then(Value::as_f64)
            .expect("heap_pops")
            > 0.0,
        "a cold ε tile visits nodes"
    );
    assert!(
        tags.get("node_bounds")
            .and_then(Value::as_f64)
            .expect("node_bounds")
            > 0.0
    );
    assert!(tags.get("point_evals").and_then(Value::as_f64).is_some());
    assert!(tags.get("resyncs").and_then(Value::as_f64).is_some());
    let depth = tags
        .get("depth_pops")
        .and_then(Value::as_arr)
        .expect("depth profile pairs");
    assert!(!depth.is_empty(), "pops attributed to kd-tree depths");
    let pops_by_depth: f64 = depth
        .iter()
        .map(|pair| pair.as_arr().expect("pair")[1].as_f64().expect("count"))
        .sum();
    assert_eq!(
        Some(pops_by_depth),
        tags.get("heap_pops").and_then(Value::as_f64),
        "depth profile accounts for every heap pop"
    );

    // The encode and write spans carry byte annotations.
    let encode = span(&trace, "encode").expect("encode span");
    assert!(
        encode
            .get("tags")
            .and_then(|t| t.get("bytes"))
            .and_then(Value::as_f64)
            .expect("encode bytes")
            > 0.0
    );

    // A repeat fetch is a hit: cache disposition flips, no render span.
    let (_, headers, _) = get(addr, "/tiles/eps/1/0/1.png");
    let hit_id = header(&headers, "X-Kdv-Trace-Id")
        .expect("hit trace id")
        .to_string();
    let hit = find_trace(addr, &hit_id);
    assert_eq!(hit.get("cache").and_then(Value::as_str), Some("hit"));
    let hit_names = span_names(&hit);
    assert!(!hit_names.contains(&"render".to_string()), "{hit_names:?}");
    assert!(!hit_names.contains(&"encode".to_string()), "{hit_names:?}");

    // Every response carries the trace header, tile or not.
    for path in ["/healthz", "/definitely/not/here", "/metrics"] {
        let (_, headers, _) = get(addr, path);
        assert!(
            header(&headers, "X-Kdv-Trace-Id").is_some(),
            "no trace header on {path}"
        );
    }

    server.stop();
}

#[test]
fn slow_traces_are_retained_preferentially() {
    let (points, kernel) = fixture();
    let mut cfg = config();
    cfg.slow_ms = 0; // every request crosses the threshold
    cfg.trace_ring = 4;
    let server = TileServer::start(cfg, &points, kernel).expect("start");
    let addr = server.local_addr();

    let (_, headers, _) = get(addr, "/tiles/eps/0/0/0.png");
    let id = header(&headers, "X-Kdv-Trace-Id").expect("id").to_string();
    find_trace(addr, &id);

    let (status, _, body) = get(addr, "/debug/slow");
    assert_eq!(status, 200);
    let doc = json_body(&body);
    assert_eq!(
        doc.get("slow_threshold_ms").and_then(Value::as_f64),
        Some(0.0)
    );
    let slow = doc.get("traces").and_then(Value::as_arr).expect("traces");
    assert!(
        slow.iter()
            .any(|t| t.get("id").and_then(Value::as_str) == Some(id.as_str())),
        "tile trace retained in the slow ring"
    );
    assert!(doc.get("slow_seen").and_then(Value::as_f64).expect("seen") >= 1.0);
    server.stop();
}

#[test]
fn no_trace_disables_the_whole_surface() {
    let (points, kernel) = fixture();
    let mut cfg = config();
    cfg.trace = false;
    let server = TileServer::start(cfg, &points, kernel).expect("start");
    let addr = server.local_addr();

    let (status, headers, _) = get(addr, "/tiles/eps/0/0/0.png");
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "X-Kdv-Trace-Id"), None);
    assert_eq!(get(addr, "/debug/traces").0, 404);
    assert_eq!(get(addr, "/debug/slow").0, 404);

    let (_, _, body) = get(addr, "/metrics");
    let trace = json_body(&body).get("trace").expect("trace block").clone();
    assert_eq!(trace.get("enabled"), Some(&Value::Bool(false)));
    server.stop();
}

#[test]
fn access_log_writes_one_json_line_per_request() {
    let (points, kernel) = fixture();
    let log_path = std::env::temp_dir().join(format!("kdv-access-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let mut cfg = config();
    cfg.access_log = Some(log_path.display().to_string());
    let server = TileServer::start(cfg, &points, kernel).expect("start");
    let addr = server.local_addr();

    let (_, headers, _) = get(addr, "/tiles/eps/0/0/0.png");
    let id = header(&headers, "X-Kdv-Trace-Id").expect("id").to_string();
    find_trace(addr, &id); // the log line is written before the ring push
    let (_, _, _) = get(addr, "/healthz");

    let mut lines = Vec::new();
    for _ in 0..50 {
        let text = std::fs::read_to_string(&log_path).unwrap_or_default();
        lines = text.lines().map(str::to_string).collect();
        if lines.len() >= 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        lines.len() >= 2,
        "expected ≥2 access-log lines, got {lines:?}"
    );

    let tile_line = lines
        .iter()
        .map(|l| json::parse(l).expect("access-log line parses as JSON"))
        .find(|doc| doc.get("trace_id").and_then(Value::as_str) == Some(id.as_str()))
        .expect("tile request logged with its trace ID");
    assert_eq!(tile_line.get("method").and_then(Value::as_str), Some("GET"));
    assert_eq!(
        tile_line.get("path").and_then(Value::as_str),
        Some("/tiles/eps/0/0/0.png")
    );
    assert_eq!(tile_line.get("status").and_then(Value::as_f64), Some(200.0));
    assert_eq!(tile_line.get("cache").and_then(Value::as_str), Some("miss"));
    assert!(tile_line.get("ts_ms").and_then(Value::as_f64).expect("ts") > 0.0);
    assert!(tile_line.get("total_us").and_then(Value::as_f64).is_some());
    let stages = tile_line.get("stages_us").expect("per-stage micros");
    for stage in ["queue", "render", "encode", "write"] {
        assert!(
            stages.get(stage).and_then(Value::as_f64).is_some(),
            "stage {stage} missing from {stages:?}"
        );
    }

    server.stop();
    std::fs::remove_file(&log_path).ok();
}

/// Golden schema test: the exact key set of the JSON `/metrics`
/// document. Adding a key is a conscious schema bump; losing one is a
/// regression dashboards would discover the hard way.
#[test]
fn metrics_json_key_set_is_pinned() {
    let (points, kernel) = fixture();
    let server = TileServer::start(config(), &points, kernel).expect("start");
    let addr = server.local_addr();
    let (_, _, _) = get(addr, "/tiles/eps/0/0/0.png");
    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let doc = json_body(&body);

    let keys = |v: &Value| -> Vec<String> {
        match v {
            Value::Obj(fields) => fields.iter().map(|(k, _)| k.clone()).collect(),
            other => panic!("expected object, got {other:?}"),
        }
    };
    assert_eq!(
        keys(&doc),
        [
            "schema",
            "uptime_ms",
            "startup",
            "http",
            "cache",
            "render",
            "store",
            "ingest",
            "pyramid",
            "trace"
        ]
    );
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("kdv-serve-metrics/6")
    );
    assert_eq!(
        keys(doc.get("http").expect("http")),
        [
            "requests",
            "ok",
            "degraded",
            "bad_request",
            "not_found",
            "rejected",
            "internal_error",
            "bytes_sent"
        ]
    );
    assert_eq!(
        keys(doc.get("cache").expect("cache")),
        [
            "hits",
            "misses",
            "hit_rate",
            "insertions",
            "evictions",
            "evicted_bytes",
            "bytes_used",
            "entries"
        ]
    );
    assert_eq!(
        keys(doc.get("pyramid").expect("pyramid")),
        [
            "level_renders",
            "pyramid_renders",
            "full_renders",
            "tau_exact_fallback_pixels"
        ]
    );
    let trace = doc.get("trace").expect("trace");
    assert_eq!(
        keys(trace),
        [
            "enabled",
            "slow_threshold_ms",
            "completed",
            "slow_seen",
            "stages"
        ]
    );
    let mut expected_stages: Vec<String> = STAGES.iter().map(|s| s.to_string()).collect();
    expected_stages.push("total".to_string());
    assert_eq!(keys(trace.get("stages").expect("stages")), expected_stages);
    server.stop();
}

/// Minimal Prometheus exposition lint, shared shape with the CI
/// obs-smoke job: `# TYPE` precedes its samples, no family twice,
/// every sample parses, histogram `le` edges are sorted cumulative.
fn prom_lint(text: &str) {
    let mut typed: Vec<String> = Vec::new();
    let mut last_bucket: Option<(String, f64, f64)> = None; // (metric+labels, le, cum)
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split(' ').next().expect("type name").to_string();
            assert!(!typed.contains(&name), "duplicate metric family {name}");
            typed.push(name);
        } else if !line.starts_with('#') && !line.is_empty() {
            let name_part = line.split([' ', '{']).next().expect("name").to_string();
            let known = typed.iter().any(|t| {
                name_part == *t
                    || name_part == format!("{t}_bucket")
                    || name_part == format!("{t}_sum")
                    || name_part == format!("{t}_count")
            });
            assert!(known, "sample {name_part} appears before its # TYPE header");
            let value: f64 = line
                .rsplit(' ')
                .next()
                .expect("value")
                .parse()
                .expect("numeric sample value");
            if name_part.ends_with("_bucket") {
                let series = line
                    .split("le=\"")
                    .next()
                    .expect("series prefix")
                    .to_string();
                let le_raw = line
                    .split("le=\"")
                    .nth(1)
                    .and_then(|r| r.split('"').next())
                    .expect("le edge");
                let le = if le_raw == "+Inf" {
                    f64::INFINITY
                } else {
                    le_raw.parse().expect("numeric le")
                };
                if let Some((prev_series, prev_le, prev_cum)) = &last_bucket {
                    if *prev_series == series {
                        assert!(le > *prev_le, "le edges not increasing in {line}");
                        assert!(value >= *prev_cum, "bucket counts not cumulative in {line}");
                    }
                }
                last_bucket = Some((series, le, value));
            } else {
                last_bucket = None;
            }
        }
    }
    assert!(!typed.is_empty(), "no metric families emitted");
}

#[test]
fn prometheus_exposition_is_lint_clean_and_unit_scaled() {
    let (points, kernel) = fixture();
    let server = TileServer::start(config(), &points, kernel).expect("start");
    let addr = server.local_addr();
    let (_, _, _) = get(addr, "/tiles/eps/0/0/0.png");
    let (_, _, _) = get(addr, "/tiles/eps/0/0/0.png"); // one hit

    let (status, headers, body) = get(addr, "/metrics?format=prometheus");
    assert_eq!(status, 200);
    assert!(header(&headers, "Content-Type")
        .expect("content type")
        .starts_with("text/plain"));
    let text = std::str::from_utf8(&body).expect("utf8");
    prom_lint(text);

    for family in [
        "kdv_uptime_seconds",
        "kdv_http_requests_total",
        "kdv_http_responses_total",
        "kdv_http_response_bytes_total",
        "kdv_cache_hits_total",
        "kdv_cache_misses_total",
        "kdv_cache_bytes_used",
        "kdv_store_loads_total",
        "kdv_render_pixels_total",
        "kdv_render_heap_pops_total",
        "kdv_render_pixel_seconds",
        "kdv_stage_duration_seconds",
        "kdv_request_duration_seconds",
        "kdv_traces_total",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} ")),
            "family {family} missing from exposition"
        );
    }
    assert!(text.contains("kdv_http_responses_total{class=\"ok\"}"));
    assert!(text.contains("kdv_stage_duration_seconds_bucket{stage=\"render\","));
    assert!(text.contains("kdv_cache_hits_total 1"));

    // The JSON document and the exposition agree on a counter.
    let (_, _, body) = get(addr, "/metrics");
    let requests = json_body(&body)
        .get("http")
        .and_then(|h| h.get("requests"))
        .and_then(Value::as_f64)
        .expect("requests");
    let sample: f64 = text
        .lines()
        .find(|l| l.starts_with("kdv_http_requests_total "))
        .expect("requests sample")
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    // The JSON scrape itself is one more routed request than the
    // Prometheus scrape observed.
    assert!(
        requests >= sample,
        "JSON ({requests}) behind text ({sample})"
    );

    server.stop();
}

#[test]
fn healthz_and_readyz_answer_from_a_plain_socket() {
    let (points, kernel) = fixture();
    let server = TileServer::start(config(), &points, kernel).expect("start");
    let addr = server.local_addr();
    let (status, _, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_slice()), (200, b"ok".as_slice()));
    // Single-dataset serving preloads at boot: ready as soon as bound.
    let (status, _, body) = get(addr, "/readyz");
    assert_eq!((status, body.as_slice()), (200, b"ready".as_slice()));
    server.stop();
}

//! `kdv-server`: an HTTP tile server over the QUAD engine.
//!
//! The paper renders one raster per invocation; an interactive map
//! wants the same density field as a *service*: a z/x/y pyramid of
//! PNG tiles behind `GET /tiles/{kind}/{z}/{x}/{y}.png`, where `kind`
//! is `eps` (colormapped εKDV) or `tau` (two-color hotspot
//! classification). This crate is that service, built entirely on
//! `std::net` — no async runtime, no HTTP library, no dependencies:
//!
//! * [`tile`] — the rigid tile-address grammar (addresses are cache
//!   keys; nothing non-canonical parses),
//! * [`cache`] — a sharded LRU of encoded tiles with a byte-capacity
//!   bound and lock-free hit/miss telemetry,
//! * [`catalog`] — the multi-dataset catalog behind `kdv serve
//!   --store`: lazy single-flight snapshot loads, CSV fallbacks, and
//!   byte-budget eviction of idle datasets,
//! * [`http`] — a minimal, hard-capped HTTP/1.1 reader/writer,
//! * [`server`] — the accept thread, bounded admission queue, worker
//!   pool, routing, `/metrics`, and graceful degradation under
//!   per-request render budgets.
//!
//! See the workspace `DESIGN.md` §9 for the serving contract
//! (pyramid geometry, cache keys, degradation semantics) and §10 for
//! the KDVS snapshot format the catalog loads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod catalog;
pub mod http;
mod ingest;
mod pyramid;
pub mod server;
pub mod tile;

pub use cache::{TileCache, TileKey};
pub use catalog::{Catalog, DatasetEntry, DatasetSource};
pub use server::{ServeError, ServerConfig, StartupReport, TileServer, STAGES};
pub use tile::{parse_tile_path, valid_dataset_name, TileAddr, TileKind};

//! A deliberately minimal HTTP/1.1 layer over `std::net`.
//!
//! The tile server speaks exactly the subset of HTTP its clients
//! need: parse one request line plus the `Content-Length` header,
//! read the body (ingest POSTs carry one) under a hard cap, write one
//! `Connection: close` response. No keep-alive, no chunking, no TLS —
//! and no dependencies. Requests are read with a hard byte cap and a
//! socket read timeout so a slow-loris client costs one worker at most
//! a few seconds, never a hang.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Longest request head (request line + headers) accepted. Tile
/// requests are tiny; anything bigger is garbage or abuse.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// One parsed request: the request line plus (for methods that carry
/// one) the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// The path component, query string stripped.
    pub path: String,
    /// The raw query string after `?`, when present (`format=prometheus`).
    pub query: Option<String>,
    /// The request body, read up to the caller's cap. Empty for
    /// bodyless requests.
    pub body: Vec<u8>,
}

/// Why a request could not be parsed into a [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// Malformed head or body: answer `400`.
    Bad(String),
    /// A declared `Content-Length` over the caller's cap: answer
    /// `413` *without* reading the body — refusing cheap is the point.
    TooLarge {
        /// The declared body size.
        declared: u64,
        /// The cap it exceeded.
        cap: u64,
    },
}

/// Reads and parses one request (head + body) from `stream`.
///
/// `max_body` caps the accepted `Content-Length`; a declaration over
/// it returns [`RequestError::TooLarge`] before any body byte is read.
/// The outer `Err` is a transport failure (reset, timeout); the inner
/// `Err` is a protocol-level rejection with its response status.
pub fn read_request(
    stream: &mut TcpStream,
    max_body: u64,
) -> io::Result<Result<Request, RequestError>> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Ok(Err(RequestError::Bad(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            ))));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(Err(RequestError::Bad(
                "connection closed before a full request head".into(),
            )));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(s) => s,
        Err(_) => return Ok(Err(RequestError::Bad("request head is not UTF-8".into()))),
    };
    let mut lines = head.lines();
    let line = lines.next().unwrap_or("");
    let mut parts = line.split(' ');
    let (method, path, query) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(method), Some(target), Some(version), None)
            if !method.is_empty() && version.starts_with("HTTP/") =>
        {
            let (path, query) = match target.split_once('?') {
                Some((p, q)) => (p.to_string(), Some(q.to_string())),
                None => (target.to_string(), None),
            };
            (method.to_string(), path, query)
        }
        _ => {
            return Ok(Err(RequestError::Bad(format!(
                "malformed request line {line:?}"
            ))))
        }
    };
    let mut content_length: u64 = 0;
    let mut expect_continue = false;
    for header in lines {
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("Content-Length") {
            content_length = match value.parse() {
                Ok(n) => n,
                Err(_) => {
                    return Ok(Err(RequestError::Bad(format!(
                        "unparseable Content-Length {value:?}"
                    ))))
                }
            };
        } else if name.eq_ignore_ascii_case("Expect") && value.eq_ignore_ascii_case("100-continue")
        {
            expect_continue = true;
        }
    }
    if content_length > max_body {
        return Ok(Err(RequestError::TooLarge {
            declared: content_length,
            cap: max_body,
        }));
    }
    if expect_continue && content_length > 0 {
        // Clients (curl included) that sent Expect wait for this
        // interim line before transmitting the body.
        stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
        stream.flush()?;
    }
    let mut body = buf[head_end..].to_vec();
    while (body.len() as u64) < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(Err(RequestError::Bad(format!(
                "connection closed {} bytes into a {content_length}-byte body",
                body.len()
            ))));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length as usize);
    Ok(Ok(Request {
        method,
        path,
        query,
        body,
    }))
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    status: u16,
    reason: &'static str,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    /// A response with the given status and an empty body.
    pub fn new(status: u16, reason: &'static str) -> Self {
        Self {
            status,
            reason,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Adds a header.
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Sets the body and its content type.
    pub fn body(mut self, content_type: &str, body: Vec<u8>) -> Self {
        self.headers
            .push(("Content-Type".to_string(), content_type.to_string()));
        self.body = body;
        self
    }

    /// The status code.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Body length in bytes (what `sent` counters should record).
    pub fn body_len(&self) -> usize {
        self.body.len()
    }

    /// Serializes head + body to one buffer (single `write_all`: no
    /// interleaving surprises, one syscall for small tiles).
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 256);
        out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).as_bytes());
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(b"Connection: close\r\n\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Writes the response and flushes.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        stream.write_all(&self.to_bytes())?;
        stream.flush()
    }
}

/// Plain-text helper for error bodies.
pub fn text_response(status: u16, reason: &'static str, message: &str) -> Response {
    Response::new(status, reason).body("text/plain; charset=utf-8", message.as_bytes().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs the parser against raw bytes through a real socket pair.
    fn parse_raw_cap(raw: &[u8], max_body: u64) -> io::Result<Result<Request, RequestError>> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&raw).expect("write");
            // Half-close: the parser must see EOF after these bytes
            // (a truncated body would otherwise block forever), while
            // the read half stays open for any interim response.
            s.shutdown(std::net::Shutdown::Write).expect("half-close");
            s
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let out = read_request(&mut conn, max_body);
        drop(writer.join().expect("writer"));
        out
    }

    fn parse_raw(raw: &[u8]) -> io::Result<Result<Request, RequestError>> {
        parse_raw_cap(raw, 1 << 20)
    }

    #[test]
    fn parses_a_get_request_line() {
        let req = parse_raw(b"GET /tiles/eps/0/0/0.png HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("io")
            .expect("parse");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/tiles/eps/0/0/0.png");
        assert_eq!(req.query, None);
        assert!(req.body.is_empty());
    }

    #[test]
    fn strips_query_strings_but_keeps_them() {
        let req = parse_raw(b"GET /metrics?format=prometheus HTTP/1.1\r\n\r\n")
            .expect("io")
            .expect("parse");
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query.as_deref(), Some("format=prometheus"));
    }

    #[test]
    fn reads_a_post_body_to_its_declared_length() {
        let req = parse_raw(
            b"POST /datasets/d/points HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello worldEXTRA",
        )
        .expect("io")
        .expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello world");
    }

    #[test]
    fn rejects_oversized_bodies_without_reading_them() {
        let err = parse_raw_cap(b"POST /d HTTP/1.1\r\nContent-Length: 1000\r\n\r\n", 64)
            .expect("io")
            .expect_err("should refuse");
        assert_eq!(
            err,
            RequestError::TooLarge {
                declared: 1000,
                cap: 64
            }
        );
    }

    #[test]
    fn rejects_truncated_bodies_and_bad_lengths() {
        assert!(matches!(
            parse_raw(b"POST /d HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")
                .expect("io")
                .expect_err("truncated body"),
            RequestError::Bad(_)
        ));
        assert!(matches!(
            parse_raw(b"POST /d HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
                .expect("io")
                .expect_err("bad length"),
            RequestError::Bad(_)
        ));
    }

    #[test]
    fn answers_100_continue_before_the_body() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(b"POST /d HTTP/1.1\r\nContent-Length: 2\r\nExpect: 100-continue\r\n\r\n")
                .expect("head");
            // A real client waits for the interim response here.
            let mut interim = [0u8; 25];
            io::Read::read_exact(&mut s, &mut interim).expect("interim");
            assert!(interim.starts_with(b"HTTP/1.1 100 Continue"));
            s.write_all(b"ok").expect("body");
            s
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let req = read_request(&mut conn, 1 << 20)
            .expect("io")
            .expect("parse");
        assert_eq!(req.body, b"ok");
        drop(writer.join().expect("writer"));
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            b"GARBAGE\r\n\r\n".to_vec(),
            b"GET /x\r\n\r\n".to_vec(),
            b"GET /x HTTP/1.1 EXTRA\r\n\r\n".to_vec(),
            b"\r\n\r\n".to_vec(),
        ] {
            assert!(parse_raw(&raw).expect("io").is_err(), "{raw:?}");
        }
    }

    #[test]
    fn caps_oversized_request_heads() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend(vec![b'a'; 10 * 1024]);
        assert!(parse_raw(&raw).expect("io").is_err());
    }

    #[test]
    fn response_serializes_with_length_and_close() {
        let r = Response::new(200, "OK")
            .header("X-Kdv-Cache", "hit")
            .body("image/png", vec![1, 2, 3]);
        let bytes = r.to_bytes();
        let text = String::from_utf8_lossy(&bytes);
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("X-Kdv-Cache: hit\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n\r\n"));
        assert!(bytes.ends_with(&[1, 2, 3]));
        assert_eq!(r.body_len(), 3);
        assert_eq!(r.status(), 200);
    }
}

//! A deliberately minimal HTTP/1.1 layer over `std::net`.
//!
//! The tile server speaks exactly the subset of HTTP its clients
//! need: parse one request line plus the handful of headers that
//! matter (`Content-Length`, `Expect`, `Connection`,
//! `X-Kdv-Trace-Id`), read the body (ingest POSTs carry one) under a
//! hard cap, write one `Content-Length`-framed response. No chunking,
//! no TLS — and no dependencies. Requests are read with a hard byte
//! cap and a socket read timeout so a slow-loris client costs one
//! worker at most a few seconds, never a hang.
//!
//! Persistent connections are *opt-in*: only a client that sends an
//! explicit `Connection: keep-alive` header gets one (the cluster
//! router does, on its proxy path). Bare HTTP/1.1 requests still get
//! `Connection: close`, so simple read-to-EOF clients — curl scripts,
//! the test suites, the benches — keep working unchanged. Pipelined
//! bytes that arrive behind one request's body are carried over into
//! the next [`read_request_from`] call on the same connection instead
//! of being dropped.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Longest request head (request line + headers) accepted. Tile
/// requests are tiny; anything bigger is garbage or abuse.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// One parsed request: the request line plus (for methods that carry
/// one) the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// The path component, query string stripped.
    pub path: String,
    /// The raw query string after `?`, when present (`format=prometheus`).
    pub query: Option<String>,
    /// The request body, read up to the caller's cap. Empty for
    /// bodyless requests.
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open
    /// (`Connection: keep-alive`, case-insensitive). Absent or any
    /// other value — including bare HTTP/1.1 — means close.
    pub keep_alive: bool,
    /// The forwarded `X-Kdv-Trace-Id` header value, when present (the
    /// cluster router sends one so shard traces stitch end to end).
    pub trace_id: Option<String>,
}

/// Why a request could not be parsed into a [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// Malformed head or body: answer `400`.
    Bad(String),
    /// A declared `Content-Length` over the caller's cap: answer
    /// `413` *without* reading the body — refusing cheap is the point.
    TooLarge {
        /// The declared body size.
        declared: u64,
        /// The cap it exceeded.
        cap: u64,
    },
}

/// Reads and parses one request (head + body) from `stream`.
///
/// `max_body` caps the accepted `Content-Length`; a declaration over
/// it returns [`RequestError::TooLarge`] before any body byte is read.
/// The outer `Err` is a transport failure (reset, timeout); the inner
/// `Err` is a protocol-level rejection with its response status.
pub fn read_request(
    stream: &mut TcpStream,
    max_body: u64,
) -> io::Result<Result<Request, RequestError>> {
    let mut carry = Vec::new();
    read_request_from(stream, max_body, &mut carry)
}

/// [`read_request`] for persistent connections: `carry` holds bytes
/// already read off the socket but not yet consumed (pipelined data
/// behind the previous request's body). The buffer is drained as this
/// request's head/body and refilled with whatever trails it, so one
/// allocation serves every request on the connection.
pub fn read_request_from(
    stream: &mut TcpStream,
    max_body: u64,
    carry: &mut Vec<u8>,
) -> io::Result<Result<Request, RequestError>> {
    let mut buf = std::mem::take(carry);
    let mut chunk = [0u8; 512];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Ok(Err(RequestError::Bad(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            ))));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(Err(RequestError::Bad(
                "connection closed before a full request head".into(),
            )));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(s) => s,
        Err(_) => return Ok(Err(RequestError::Bad("request head is not UTF-8".into()))),
    };
    let mut lines = head.lines();
    let line = lines.next().unwrap_or("");
    let mut parts = line.split(' ');
    let (method, path, query) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(method), Some(target), Some(version), None)
            if !method.is_empty() && version.starts_with("HTTP/") =>
        {
            let (path, query) = match target.split_once('?') {
                Some((p, q)) => (p.to_string(), Some(q.to_string())),
                None => (target.to_string(), None),
            };
            (method.to_string(), path, query)
        }
        _ => {
            return Ok(Err(RequestError::Bad(format!(
                "malformed request line {line:?}"
            ))))
        }
    };
    let mut content_length: u64 = 0;
    let mut expect_continue = false;
    let mut keep_alive = false;
    let mut trace_id = None;
    for header in lines {
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("Content-Length") {
            content_length = match value.parse() {
                Ok(n) => n,
                Err(_) => {
                    return Ok(Err(RequestError::Bad(format!(
                        "unparseable Content-Length {value:?}"
                    ))))
                }
            };
        } else if name.eq_ignore_ascii_case("Expect") && value.eq_ignore_ascii_case("100-continue")
        {
            expect_continue = true;
        } else if name.eq_ignore_ascii_case("Connection") {
            keep_alive = value.eq_ignore_ascii_case("keep-alive");
        } else if name.eq_ignore_ascii_case("X-Kdv-Trace-Id") {
            trace_id = Some(value.to_string());
        }
    }
    if content_length > max_body {
        return Ok(Err(RequestError::TooLarge {
            declared: content_length,
            cap: max_body,
        }));
    }
    if expect_continue && content_length > 0 {
        // Clients (curl included) that sent Expect wait for this
        // interim line before transmitting the body.
        stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
        stream.flush()?;
    }
    let mut body = buf.split_off(head_end);
    while (body.len() as u64) < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(Err(RequestError::Bad(format!(
                "connection closed {} bytes into a {content_length}-byte body",
                body.len()
            ))));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    // Bytes behind this request's body belong to the *next* request on
    // a persistent connection; hand them back instead of dropping them.
    *carry = body.split_off(content_length as usize);
    Ok(Ok(Request {
        method,
        path,
        query,
        body,
        keep_alive,
        trace_id,
    }))
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    status: u16,
    reason: &'static str,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
    close: bool,
}

impl Response {
    /// A response with the given status and an empty body.
    pub fn new(status: u16, reason: &'static str) -> Self {
        Self {
            status,
            reason,
            headers: Vec::new(),
            body: Vec::new(),
            close: true,
        }
    }

    /// Marks the response `Connection: keep-alive` (the default is
    /// `close`). Only set this when the request asked for it *and* the
    /// server intends to read another request from the connection.
    pub fn keep_alive(mut self, keep: bool) -> Self {
        self.close = !keep;
        self
    }

    /// Whether this response will close the connection.
    pub fn closes(&self) -> bool {
        self.close
    }

    /// Adds a header.
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Sets the body and its content type.
    pub fn body(mut self, content_type: &str, body: Vec<u8>) -> Self {
        self.headers
            .push(("Content-Type".to_string(), content_type.to_string()));
        self.body = body;
        self
    }

    /// The status code.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Body length in bytes (what `sent` counters should record).
    pub fn body_len(&self) -> usize {
        self.body.len()
    }

    /// Serializes head + body to one buffer (single `write_all`: no
    /// interleaving surprises, one syscall for small tiles).
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 256);
        out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).as_bytes());
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        if self.close {
            out.extend_from_slice(b"Connection: close\r\n\r\n");
        } else {
            out.extend_from_slice(b"Connection: keep-alive\r\n\r\n");
        }
        out.extend_from_slice(&self.body);
        out
    }

    /// Writes the response and flushes.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        stream.write_all(&self.to_bytes())?;
        stream.flush()
    }
}

/// Plain-text helper for error bodies.
pub fn text_response(status: u16, reason: &'static str, message: &str) -> Response {
    Response::new(status, reason).body("text/plain; charset=utf-8", message.as_bytes().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs the parser against raw bytes through a real socket pair.
    fn parse_raw_cap(raw: &[u8], max_body: u64) -> io::Result<Result<Request, RequestError>> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&raw).expect("write");
            // Half-close: the parser must see EOF after these bytes
            // (a truncated body would otherwise block forever), while
            // the read half stays open for any interim response.
            s.shutdown(std::net::Shutdown::Write).expect("half-close");
            s
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let out = read_request(&mut conn, max_body);
        drop(writer.join().expect("writer"));
        out
    }

    fn parse_raw(raw: &[u8]) -> io::Result<Result<Request, RequestError>> {
        parse_raw_cap(raw, 1 << 20)
    }

    #[test]
    fn parses_a_get_request_line() {
        let req = parse_raw(b"GET /tiles/eps/0/0/0.png HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("io")
            .expect("parse");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/tiles/eps/0/0/0.png");
        assert_eq!(req.query, None);
        assert!(req.body.is_empty());
    }

    #[test]
    fn strips_query_strings_but_keeps_them() {
        let req = parse_raw(b"GET /metrics?format=prometheus HTTP/1.1\r\n\r\n")
            .expect("io")
            .expect("parse");
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query.as_deref(), Some("format=prometheus"));
    }

    #[test]
    fn reads_a_post_body_to_its_declared_length() {
        let req = parse_raw(
            b"POST /datasets/d/points HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello worldEXTRA",
        )
        .expect("io")
        .expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello world");
    }

    #[test]
    fn rejects_oversized_bodies_without_reading_them() {
        let err = parse_raw_cap(b"POST /d HTTP/1.1\r\nContent-Length: 1000\r\n\r\n", 64)
            .expect("io")
            .expect_err("should refuse");
        assert_eq!(
            err,
            RequestError::TooLarge {
                declared: 1000,
                cap: 64
            }
        );
    }

    #[test]
    fn rejects_truncated_bodies_and_bad_lengths() {
        assert!(matches!(
            parse_raw(b"POST /d HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")
                .expect("io")
                .expect_err("truncated body"),
            RequestError::Bad(_)
        ));
        assert!(matches!(
            parse_raw(b"POST /d HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
                .expect("io")
                .expect_err("bad length"),
            RequestError::Bad(_)
        ));
    }

    #[test]
    fn answers_100_continue_before_the_body() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(b"POST /d HTTP/1.1\r\nContent-Length: 2\r\nExpect: 100-continue\r\n\r\n")
                .expect("head");
            // A real client waits for the interim response here.
            let mut interim = [0u8; 25];
            io::Read::read_exact(&mut s, &mut interim).expect("interim");
            assert!(interim.starts_with(b"HTTP/1.1 100 Continue"));
            s.write_all(b"ok").expect("body");
            s
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let req = read_request(&mut conn, 1 << 20)
            .expect("io")
            .expect("parse");
        assert_eq!(req.body, b"ok");
        drop(writer.join().expect("writer"));
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            b"GARBAGE\r\n\r\n".to_vec(),
            b"GET /x\r\n\r\n".to_vec(),
            b"GET /x HTTP/1.1 EXTRA\r\n\r\n".to_vec(),
            b"\r\n\r\n".to_vec(),
        ] {
            assert!(parse_raw(&raw).expect("io").is_err(), "{raw:?}");
        }
    }

    #[test]
    fn caps_oversized_request_heads() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend(vec![b'a'; 10 * 1024]);
        assert!(parse_raw(&raw).expect("io").is_err());
    }

    #[test]
    fn captures_keep_alive_and_trace_id_headers() {
        let req = parse_raw(
            b"GET /t HTTP/1.1\r\nConnection: Keep-Alive\r\nX-Kdv-Trace-Id: 00ab00ab00ab00ab\r\n\r\n",
        )
        .expect("io")
        .expect("parse");
        assert!(req.keep_alive);
        assert_eq!(req.trace_id.as_deref(), Some("00ab00ab00ab00ab"));

        let req = parse_raw(b"GET /t HTTP/1.1\r\nConnection: close\r\n\r\n")
            .expect("io")
            .expect("parse");
        assert!(!req.keep_alive);
        assert_eq!(req.trace_id, None);

        // Bare HTTP/1.1 (no Connection header) defaults to close:
        // persistence is opt-in so read-to-EOF clients keep working.
        let req = parse_raw(b"GET /t HTTP/1.1\r\n\r\n")
            .expect("io")
            .expect("parse");
        assert!(!req.keep_alive);
    }

    #[test]
    fn carries_pipelined_bytes_to_the_next_request() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            // Two pipelined requests in one write: the second must not
            // be discarded with the first request's trailing bytes.
            s.write_all(
                b"POST /a HTTP/1.1\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\nhi\
                  GET /b HTTP/1.1\r\n\r\n",
            )
            .expect("write");
            s.shutdown(std::net::Shutdown::Write).expect("half-close");
            s
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let mut carry = Vec::new();
        let first = read_request_from(&mut conn, 1 << 20, &mut carry)
            .expect("io")
            .expect("parse");
        assert_eq!(first.path, "/a");
        assert_eq!(first.body, b"hi");
        assert!(first.keep_alive);
        assert!(!carry.is_empty(), "second request should be carried over");
        let second = read_request_from(&mut conn, 1 << 20, &mut carry)
            .expect("io")
            .expect("parse");
        assert_eq!(second.path, "/b");
        assert!(second.body.is_empty());
        assert!(carry.is_empty());
        drop(writer.join().expect("writer"));
    }

    #[test]
    fn response_serializes_keep_alive_when_asked() {
        let r = Response::new(200, "OK").keep_alive(true);
        assert!(!r.closes());
        let text = String::from_utf8_lossy(&r.to_bytes()).to_string();
        assert!(text.contains("Connection: keep-alive\r\n\r\n"));
        assert!(!text.contains("Connection: close"));
    }

    #[test]
    fn response_serializes_with_length_and_close() {
        let r = Response::new(200, "OK")
            .header("X-Kdv-Cache", "hit")
            .body("image/png", vec![1, 2, 3]);
        let bytes = r.to_bytes();
        let text = String::from_utf8_lossy(&bytes);
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("X-Kdv-Cache: hit\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n\r\n"));
        assert!(bytes.ends_with(&[1, 2, 3]));
        assert_eq!(r.body_len(), 3);
        assert_eq!(r.status(), 200);
    }
}

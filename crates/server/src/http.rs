//! A deliberately minimal HTTP/1.1 layer over `std::net`.
//!
//! The tile server speaks exactly the subset of HTTP a tile client
//! needs: parse one `GET` request line, ignore the headers, write one
//! `Connection: close` response. No keep-alive, no chunking, no TLS —
//! and no dependencies. Requests are read with a hard byte cap and a
//! socket read timeout so a slow-loris client costs one worker at most
//! a few seconds, never a hang.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Longest request head (request line + headers) accepted. Tile
/// requests are tiny; anything bigger is garbage or abuse.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method, verbatim (`GET`, `HEAD`, …).
    pub method: String,
    /// The path component, query string stripped.
    pub path: String,
    /// The raw query string after `?`, when present (`format=prometheus`).
    pub query: Option<String>,
}

/// Reads and parses one request head from `stream`.
///
/// The outer `Err` is a transport failure (reset, timeout); the inner
/// `Err` is a malformed request the caller should answer with `400`.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Result<Request, String>> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(Err("connection closed before a full request head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Ok(Err(format!("request head exceeds {MAX_HEAD_BYTES} bytes")));
        }
    }
    let head = match std::str::from_utf8(&buf) {
        Ok(s) => s,
        Err(_) => return Ok(Err("request head is not UTF-8".into())),
    };
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split(' ');
    match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(method), Some(target), Some(version), None)
            if !method.is_empty() && version.starts_with("HTTP/") =>
        {
            let (path, query) = match target.split_once('?') {
                Some((p, q)) => (p.to_string(), Some(q.to_string())),
                None => (target.to_string(), None),
            };
            Ok(Ok(Request {
                method: method.to_string(),
                path,
                query,
            }))
        }
        _ => Ok(Err(format!("malformed request line {line:?}"))),
    }
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    status: u16,
    reason: &'static str,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    /// A response with the given status and an empty body.
    pub fn new(status: u16, reason: &'static str) -> Self {
        Self {
            status,
            reason,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Adds a header.
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Sets the body and its content type.
    pub fn body(mut self, content_type: &str, body: Vec<u8>) -> Self {
        self.headers
            .push(("Content-Type".to_string(), content_type.to_string()));
        self.body = body;
        self
    }

    /// The status code.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Body length in bytes (what `sent` counters should record).
    pub fn body_len(&self) -> usize {
        self.body.len()
    }

    /// Serializes head + body to one buffer (single `write_all`: no
    /// interleaving surprises, one syscall for small tiles).
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 256);
        out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).as_bytes());
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(b"Connection: close\r\n\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Writes the response and flushes.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        stream.write_all(&self.to_bytes())?;
        stream.flush()
    }
}

/// Plain-text helper for error bodies.
pub fn text_response(status: u16, reason: &'static str, message: &str) -> Response {
    Response::new(status, reason).body("text/plain; charset=utf-8", message.as_bytes().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs the parser against raw bytes through a real socket pair.
    fn parse_raw(raw: &[u8]) -> io::Result<Result<Request, String>> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&raw).expect("write");
            s // keep alive until the parser is done
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let out = read_request(&mut conn);
        drop(writer.join().expect("writer"));
        out
    }

    #[test]
    fn parses_a_get_request_line() {
        let req = parse_raw(b"GET /tiles/eps/0/0/0.png HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("io")
            .expect("parse");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/tiles/eps/0/0/0.png");
        assert_eq!(req.query, None);
    }

    #[test]
    fn strips_query_strings_but_keeps_them() {
        let req = parse_raw(b"GET /metrics?format=prometheus HTTP/1.1\r\n\r\n")
            .expect("io")
            .expect("parse");
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query.as_deref(), Some("format=prometheus"));
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            b"GARBAGE\r\n\r\n".to_vec(),
            b"GET /x\r\n\r\n".to_vec(),
            b"GET /x HTTP/1.1 EXTRA\r\n\r\n".to_vec(),
            b"\r\n\r\n".to_vec(),
        ] {
            assert!(parse_raw(&raw).expect("io").is_err(), "{raw:?}");
        }
    }

    #[test]
    fn caps_oversized_request_heads() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend(vec![b'a'; 10 * 1024]);
        assert!(parse_raw(&raw).expect("io").is_err());
    }

    #[test]
    fn response_serializes_with_length_and_close() {
        let r = Response::new(200, "OK")
            .header("X-Kdv-Cache", "hit")
            .body("image/png", vec![1, 2, 3]);
        let bytes = r.to_bytes();
        let text = String::from_utf8_lossy(&bytes);
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("X-Kdv-Cache: hit\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n\r\n"));
        assert!(bytes.ends_with(&[1, 2, 3]));
        assert_eq!(r.body_len(), 3);
        assert_eq!(r.status(), 200);
    }
}

//! Durable streaming ingest: a write-ahead log and memtable over the
//! KDVS snapshot each dataset serves from.
//!
//! The design is a miniature LSM tree with exactly two levels:
//!
//! * the **WAL** (`{name}.wal` next to `{name}.kdvs`) is the
//!   durability device. A write is acknowledged only after its record
//!   has reached the configured durability point (`--fsync every`
//!   syncs per record; `--fsync batch` elects a group-commit leader
//!   and one sync covers every record appended before it). Replay
//!   tolerates torn tails: the valid prefix is kept, everything after
//!   the first invalid frame — which by construction was never
//!   acknowledged — is discarded,
//! * the **memtable** holds the not-yet-compacted suffix of the log in
//!   two render-ready forms: live appended points, and base-snapshot
//!   coordinates hidden by tombstones (with the base weight each
//!   hides). Tile renders merge this delta *exactly* — the kernel sum
//!   over a few thousand memtable points per pixel — so a freshly
//!   ingested point is visible in the next tile without any index
//!   rebuild,
//! * **compaction** folds the memtable into a new kd-tree, writes a
//!   new snapshot (atomic tmp+rename, `applied_seq` recorded in the
//!   file), swaps it into the catalog, and truncates the WAL to the
//!   suffix that arrived while compaction ran. Boot-time recovery
//!   replays whatever WAL is left, skipping records at or below the
//!   snapshot's `applied_seq` watermark — so replay after any crash
//!   point is idempotent.
//!
//! Cache coherence rides on two cheap facts: every kernel this engine
//! ships has a finite (or effectively finite, for Gaussian underflow)
//! support radius, so a write batch only dirties tiles whose rectangle
//! intersects the batch's MBR dilated by that radius; and the memtable
//! carries an `epoch` counter so a tile rendered against one delta is
//! never cached after a later write invalidated its region.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use kdv_core::engine::{RefineEvaluator, RenderBudget};
use kdv_core::error::KdvError;
use kdv_core::kernel::{Kernel, KernelType};
use kdv_core::raster::{DensityGrid, RasterSpec};
use kdv_geom::PointSet;
use kdv_index::KdTree;
use kdv_pyramid::{Pyramid, PyramidBuilder, PyramidConfig};
use kdv_store::wal::fsync_dir;
use kdv_store::{FsyncPolicy, SnapshotWriter, StoreError, WalOp, WalRecord, WalWriter};
use kdv_telemetry::IngestCounters;
use kdv_viz::render::BinaryGrid;

use crate::catalog::{finish_entry, Catalog, DatasetEntry, DatasetSource};

/// The not-yet-compacted suffix of a dataset's log, in render-ready
/// form. Guarded by [`IngestState::mem`]; every mutation bumps
/// `epoch`.
#[derive(Debug, Default)]
pub(crate) struct Memtable {
    /// Un-compacted WAL records in sequence order — exactly what a
    /// fresh replay of the on-disk WAL would yield. Compaction folds
    /// and prunes them.
    ops: Vec<WalRecord>,
    /// Live appended points (`[x, y, w]`) not yet in the base.
    appends: Vec<[f64; 3]>,
    /// Base-snapshot coordinates hidden by tombstones, each carrying
    /// the total base weight it hides.
    removed: Vec<[f64; 3]>,
    /// Coordinates already tombstoned against the base (bit keys), so
    /// repeated tombstones never double-subtract.
    removed_keys: HashSet<(u64, u64)>,
    /// Highest sequence number reflected here (starts at the base's
    /// `applied_seq`).
    last_seq: u64,
    /// Bumped on every mutation and on compaction; renders snapshot it
    /// and re-check before caching a tile.
    epoch: u64,
}

impl Memtable {
    /// Folds one record into the derived views (not into `ops`).
    ///
    /// Tombstone semantics are LSM "delete what exists now": a
    /// tombstoned coordinate first kills bit-identical live appends,
    /// then hides the base points at that exact coordinate; appends
    /// arriving *after* the tombstone are new live points.
    fn apply_op(&mut self, rec: &WalRecord, base: &PointSet) {
        match &rec.op {
            WalOp::Append(pts) => self.appends.extend_from_slice(pts),
            WalOp::Tombstone(coords) => {
                for c in coords {
                    let key = (c[0].to_bits(), c[1].to_bits());
                    self.appends
                        .retain(|p| (p[0].to_bits(), p[1].to_bits()) != key);
                    if self.removed_keys.insert(key) {
                        let mut hidden = 0.0;
                        for i in 0..base.len() {
                            let p = base.point(i);
                            if (p[0].to_bits(), p[1].to_bits()) == key {
                                hidden += base.weight(i);
                            }
                        }
                        if hidden != 0.0 {
                            self.removed.push([c[0], c[1], hidden]);
                        }
                    }
                }
            }
        }
    }

    /// Applies and remembers one record.
    fn apply(&mut self, rec: &WalRecord, base: &PointSet) {
        self.apply_op(rec, base);
        self.last_seq = self.last_seq.max(rec.seq);
        self.ops.push(rec.clone());
        self.epoch += 1;
    }

    /// Recomputes the derived views from `ops` against a new base
    /// (after compaction swapped the snapshot under us).
    fn rebuild(&mut self, base: &PointSet) {
        self.appends.clear();
        self.removed.clear();
        self.removed_keys.clear();
        let ops = std::mem::take(&mut self.ops);
        for rec in &ops {
            self.apply_op(rec, base);
        }
        self.ops = ops;
        self.epoch += 1;
    }

    /// Memtable size in render-cost units (points every tile pixel
    /// must touch). Backpressure and compaction trigger on this.
    fn point_count(&self) -> usize {
        self.appends.len() + self.removed.len()
    }
}

/// An immutable snapshot of the memtable's render-facing state, taken
/// under the lock and merged into tiles outside it.
#[derive(Debug, Clone)]
pub(crate) struct DeltaView {
    pub(crate) appends: Vec<[f64; 3]>,
    pub(crate) removed: Vec<[f64; 3]>,
    /// The memtable epoch this view was taken at.
    pub(crate) epoch: u64,
}

impl DeltaView {
    /// True when the base snapshot alone is the whole truth.
    pub(crate) fn is_empty(&self) -> bool {
        self.appends.is_empty() && self.removed.is_empty()
    }

    /// The exact density delta at `q`: appended mass minus hidden base
    /// mass. Adding this to the base engine's estimate yields the
    /// density of the logical (base + log) point set.
    pub(crate) fn delta_at(&self, q: &[f64], kernel: Kernel) -> f64 {
        let d2 = |p: &[f64; 3]| {
            let dx = q[0] - p[0];
            let dy = q[1] - p[1];
            dx * dx + dy * dy
        };
        let mut delta = 0.0;
        for p in &self.appends {
            delta += p[2] * kernel.eval_dist2(d2(p));
        }
        for p in &self.removed {
            delta -= p[2] * kernel.eval_dist2(d2(p));
        }
        delta
    }
}

/// The WAL side of one dataset's ingest pipeline: the writer plus the
/// sequence bookkeeping group commit needs.
struct WalState {
    writer: WalWriter,
    /// Next sequence number to assign.
    next_seq: u64,
    /// Highest sequence number known durable (covered by a completed
    /// sync, or folded into the snapshot).
    durable_seq: u64,
    /// True while a group-commit leader is syncing outside the lock.
    syncing: bool,
}

/// Why a [`IngestState::commit`] produced no durable record.
#[derive(Debug)]
pub(crate) enum CommitError {
    /// The tombstone would leave the logical dataset with zero live
    /// points. An empty dataset has no buildable index and no render
    /// window, so compaction could never fold it; the write is refused
    /// instead (HTTP 400).
    WouldEmpty,
    /// The WAL append or sync failed.
    Store(StoreError),
}

impl From<StoreError> for CommitError {
    fn from(e: StoreError) -> Self {
        CommitError::Store(e)
    }
}

/// A durably committed write, ready to acknowledge.
pub(crate) struct Committed {
    /// The record's sequence number.
    pub seq: u64,
    /// WAL length after the append (bytes a crash would replay).
    pub wal_len: u64,
}

/// Point-in-time ingest bookkeeping for `/datasets/{name}/stats`.
pub(crate) struct IngestStatus {
    /// Un-compacted WAL records.
    pub ops: usize,
    /// Live memtable appends.
    pub appends: usize,
    /// Tombstoned base coordinates.
    pub removed: usize,
    /// Highest applied sequence number.
    pub last_seq: u64,
    /// Highest durable sequence number.
    pub durable_seq: u64,
    /// WAL file length in bytes.
    pub wal_len: u64,
    /// Memtable epoch (mutation counter).
    pub epoch: u64,
}

/// Everything one dataset needs to accept durable writes. Lock order
/// is `wal` before `mem` before `base`; `delta()` takes only `mem`.
pub(crate) struct IngestState {
    mem: Mutex<Memtable>,
    wal: Mutex<WalState>,
    /// The catalog entry the memtable's derived views were computed
    /// against. Updated at the compaction swap point while both the
    /// `wal` and `mem` locks are held, so a committer resolving the
    /// base under the `mem` lock always sees a (base, memtable) pair
    /// that is mutually consistent — a tombstone's hidden weight is
    /// never computed against a base a concurrent compaction already
    /// replaced.
    base: Mutex<Arc<DatasetEntry>>,
    /// Signaled whenever `durable_seq` advances (group commit, WAL
    /// rotation) so batch-mode waiters can re-check.
    flushed: Condvar,
    fsync: FsyncPolicy,
    /// True while a compaction for this dataset is in flight (at most
    /// one at a time).
    pub(crate) compacting: AtomicBool,
    /// Bumped once per completed compaction, *after* both the catalog
    /// entry and the memtable reflect the new base. Renders re-check
    /// it to detect an entry/delta pair torn by a concurrent
    /// compaction.
    generation: AtomicU64,
    wal_path: PathBuf,
}

impl IngestState {
    /// Opens (or creates) the WAL at `wal_path` and replays it over
    /// `entry`'s base, skipping records the snapshot already folded
    /// (`seq <= entry.applied_seq`). A torn tail is truncated away —
    /// nothing in it was ever acknowledged.
    pub(crate) fn open(
        wal_path: PathBuf,
        entry: &Arc<DatasetEntry>,
        fsync: FsyncPolicy,
        counters: &IngestCounters,
    ) -> Result<Self, String> {
        let name = &entry.name;
        let err = |what: &str, e: StoreError| format!("dataset {name:?}: {what}: {e}");
        let mut mem = Memtable {
            last_seq: entry.applied_seq,
            ..Memtable::default()
        };
        let (writer, next_seq) = if wal_path.exists() {
            let started = Instant::now();
            let replay =
                kdv_store::wal::replay(&wal_path).map_err(|e| err("WAL replay failed", e))?;
            let base = entry.tree.points();
            let mut applied = 0u64;
            for rec in &replay.records {
                if rec.seq > entry.applied_seq {
                    mem.apply(rec, base);
                    applied += 1;
                }
            }
            counters.replay(applied, replay.torn, started.elapsed().as_nanos() as u64);
            let mut writer = WalWriter::open_at(&wal_path, replay.valid_len)
                .map_err(|e| err("cannot reopen WAL", e))?;
            // Healing truncated a torn tail; make the surviving prefix
            // durable before new acks stack on top of it.
            writer
                .sync()
                .map_err(|e| err("cannot sync healed WAL", e))?;
            (writer, replay.last_seq().max(entry.applied_seq) + 1)
        } else {
            let writer = WalWriter::create(&wal_path).map_err(|e| err("cannot create WAL", e))?;
            (writer, entry.applied_seq + 1)
        };
        Ok(Self {
            mem: Mutex::new(mem),
            base: Mutex::new(Arc::clone(entry)),
            wal: Mutex::new(WalState {
                writer,
                next_seq,
                durable_seq: next_seq - 1,
                syncing: false,
            }),
            flushed: Condvar::new(),
            fsync,
            compacting: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            wal_path,
        })
    }

    /// Appends `op` to the WAL, applies it to the memtable, and blocks
    /// until the record is durable under the configured fsync policy.
    /// Only after this returns `Ok` may the write be acknowledged.
    ///
    /// The base the op folds against is resolved *inside* the memtable
    /// lock, never passed in: a compaction that published a new base
    /// between the caller's admission checks and this commit updates
    /// [`IngestState::base`] under the same lock, so a tombstone's
    /// hidden weight is always computed against the base the memtable
    /// currently describes.
    ///
    /// The memtable is updated *before* the durability wait: dirty
    /// (unacked) reads are acceptable — a crash loses exactly the
    /// unacked tail, which no client was ever promised — and it keeps
    /// tile renders off the fsync critical path.
    pub(crate) fn commit(
        &self,
        op: WalOp,
        counters: &IngestCounters,
    ) -> Result<Committed, CommitError> {
        let mut wal = self.wal.lock().expect("wal state poisoned");
        // Race-free backstop for the server's admission-time check:
        // commits are serialized by the wal lock, so two writers whose
        // tombstones only *jointly* empty the dataset cannot both slip
        // past (the second sees the first's tombstones in the
        // memtable here and is refused before anything hits the WAL).
        if let WalOp::Tombstone(coords) = &op {
            if self.would_empty(&[], coords) {
                return Err(CommitError::WouldEmpty);
            }
        }
        let seq = wal.next_seq;
        let rec = WalRecord { seq, op };
        let before = wal.writer.len();
        let end = wal.writer.append(&rec)?;
        wal.next_seq += 1;
        counters.wal_written(end - before);
        {
            let mut mem = self.mem.lock().expect("memtable poisoned");
            let base = Arc::clone(&self.base.lock().expect("base entry poisoned"));
            mem.apply(&rec, base.tree.points());
        }
        match self.fsync {
            FsyncPolicy::Every => {
                wal.writer.sync()?;
                counters.fsync();
                wal.durable_seq = wal.durable_seq.max(seq);
                self.flushed.notify_all();
            }
            FsyncPolicy::Batch => {
                // Group commit: one leader syncs for every record
                // appended before it took the snapshot; followers wait
                // on the condvar and re-check the durable watermark.
                while wal.durable_seq < seq {
                    if wal.syncing {
                        wal = self.flushed.wait(wal).expect("wal state poisoned");
                        continue;
                    }
                    wal.syncing = true;
                    let target = wal.next_seq - 1;
                    let handle = wal.writer.sync_handle();
                    drop(wal);
                    let synced = handle.and_then(|f| {
                        f.sync_data().map_err(|e| StoreError::Io {
                            op: "sync WAL",
                            path: self.wal_path.display().to_string(),
                            source: e,
                        })
                    });
                    wal = self.wal.lock().expect("wal state poisoned");
                    wal.syncing = false;
                    match synced {
                        Ok(()) => {
                            counters.fsync();
                            // A concurrent WAL rotation may already
                            // have advanced the watermark past ours.
                            wal.durable_seq = wal.durable_seq.max(target);
                            self.flushed.notify_all();
                        }
                        Err(e) => {
                            self.flushed.notify_all();
                            return Err(e.into());
                        }
                    }
                }
            }
        }
        Ok(Committed {
            seq,
            wal_len: wal.writer.len(),
        })
    }

    /// The catalog entry the memtable currently folds against (see
    /// [`IngestState::base`]).
    pub(crate) fn base_entry(&self) -> Arc<DatasetEntry> {
        Arc::clone(&self.base.lock().expect("base entry poisoned"))
    }

    /// Fsyncs the WAL unconditionally and advances the durable
    /// watermark over everything appended so far. The graceful-drain
    /// path calls this after the worker pool has exited so a
    /// batch-mode server never exits 0 with acknowledged-but-buffered
    /// bytes still sitting in the page cache.
    pub(crate) fn sync_wal(&self) -> Result<(), StoreError> {
        let mut wal = self.wal.lock().expect("wal state poisoned");
        wal.writer.sync()?;
        wal.durable_seq = wal.next_seq - 1;
        self.flushed.notify_all();
        Ok(())
    }

    /// True when committing `appends` then tombstoning `removes` would
    /// leave the logical dataset (base + memtable) with zero live
    /// points. The server refuses such batches at admission and
    /// [`IngestState::commit`] re-checks under the wal lock — an empty
    /// dataset could never compact (no index, no window), so the 429
    /// path would wedge permanently once the memtable filled.
    pub(crate) fn would_empty(&self, appends: &[[f64; 3]], removes: &[[f64; 2]]) -> bool {
        if removes.is_empty() {
            return false;
        }
        let key = |x: f64, y: f64| (x.to_bits(), y.to_bits());
        let rkeys: HashSet<(u64, u64)> = removes.iter().map(|c| key(c[0], c[1])).collect();
        // Any point surviving the batch keeps the dataset non-empty:
        // a batch append not tombstoned by the batch itself, ...
        if appends.iter().any(|p| !rkeys.contains(&key(p[0], p[1]))) {
            return false;
        }
        let mem = self.mem.lock().expect("memtable poisoned");
        // ... a live memtable append the batch does not tombstone, ...
        if mem
            .appends
            .iter()
            .any(|p| !rkeys.contains(&key(p[0], p[1])))
        {
            return false;
        }
        // ... or a base point neither already hidden nor tombstoned
        // by the batch.
        let base = Arc::clone(&self.base.lock().expect("base entry poisoned"));
        let pts = base.tree.points();
        (0..pts.len()).all(|i| {
            let p = pts.point(i);
            let k = key(p[0], p[1]);
            mem.removed_keys.contains(&k) || rkeys.contains(&k)
        })
    }

    /// Snapshots the memtable's render-facing state.
    pub(crate) fn delta(&self) -> DeltaView {
        let mem = self.mem.lock().expect("memtable poisoned");
        DeltaView {
            appends: mem.appends.clone(),
            removed: mem.removed.clone(),
            epoch: mem.epoch,
        }
    }

    /// The current memtable epoch (compare with a
    /// [`DeltaView::epoch`] before caching a tile rendered from it).
    pub(crate) fn epoch(&self) -> u64 {
        self.mem.lock().expect("memtable poisoned").epoch
    }

    /// The compaction generation (see [`IngestState::generation`]).
    pub(crate) fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Memtable size in points (backpressure/compaction triggers).
    pub(crate) fn point_count(&self) -> usize {
        self.mem.lock().expect("memtable poisoned").point_count()
    }

    /// Consistent bookkeeping for the stats endpoint.
    pub(crate) fn status(&self) -> IngestStatus {
        let wal = self.wal.lock().expect("wal state poisoned");
        let mem = self.mem.lock().expect("memtable poisoned");
        IngestStatus {
            ops: mem.ops.len(),
            appends: mem.appends.len(),
            removed: mem.removed.len(),
            last_seq: mem.last_seq,
            durable_seq: wal.durable_seq,
            wal_len: wal.writer.len(),
            epoch: mem.epoch,
        }
    }
}

/// Folds the memtable into a new snapshot and truncates the WAL.
///
/// Crash-safety is positional: the new snapshot (carrying
/// `applied_seq`) lands first via atomic tmp+rename, so a crash at any
/// later point replays the old WAL against it and the watermark skips
/// everything already folded. Only then is the WAL rewritten to the
/// suffix that arrived during compaction (tmp + sync + rename + dir
/// fsync) and the catalog entry swapped. Returns the published entry,
/// or `None` when there was nothing to fold.
pub(crate) fn compact(
    state: &IngestState,
    catalog: &Catalog,
    idx: usize,
    counters: &IngestCounters,
) -> Result<Option<Arc<DatasetEntry>>, String> {
    let started = Instant::now();
    // Fold against the base the memtable was built over (identical to
    // the catalog's view — only compaction replaces entries, and at
    // most one runs per dataset).
    let entry = state.base_entry();
    let name = &entry.name;
    let (ops, upto) = {
        let mem = state.mem.lock().expect("memtable poisoned");
        (mem.ops.clone(), mem.last_seq)
    };
    if ops.is_empty() {
        return Ok(None);
    }
    let snapshot_path = catalog
        .snapshot_path(idx)
        .ok_or_else(|| format!("dataset {name:?} is not snapshot-backed"))?
        .to_path_buf();
    let merged = merge_points(entry.tree.points(), &ops);
    if merged.is_empty() {
        return Err(format!(
            "dataset {name:?}: refusing to compact to zero points"
        ));
    }
    let build_started = Instant::now();
    let tree = KdTree::try_build_default(&merged).map_err(|e| format!("dataset {name:?}: {e}"))?;
    let index_ms = build_started.elapsed().as_millis() as u64;
    let mut folded = finish_entry(
        name,
        tree,
        entry.kernel,
        catalog.settings(),
        index_ms,
        DatasetSource::Snapshot,
    )?;
    folded.applied_seq = upto;
    // A pyramid-backed dataset keeps its pyramid across compaction:
    // rebuild and re-certify the ladder over the folded point set, so
    // low-zoom serving never regresses to the full index just because
    // writes happened. Datasets without a ladder stay without one —
    // opting in is `kdv index build --pyramid`'s job. The old levels'
    // sizes are the ladder shape the operator chose (explicit
    // `--coresets` or the geometric default at build time); reuse them
    // rather than re-deriving, and never keep a stale level — its ε_s
    // was certified against the pre-compaction base.
    if !entry.pyramid.is_empty() {
        let n = folded.tree.points().len();
        let sizes: Vec<usize> = entry
            .pyramid
            .levels()
            .iter()
            .map(|lv| lv.tree.points().len())
            .filter(|&s| s < n)
            .collect();
        folded.pyramid = if sizes.is_empty() {
            Arc::new(Pyramid::empty())
        } else {
            let config = PyramidConfig {
                sizes,
                ..PyramidConfig::default()
            };
            let (pyramid, _) = PyramidBuilder::new(&folded.tree, folded.kernel)
                .with_config(config)
                .build()
                .map_err(|e| format!("dataset {name:?}: pyramid rebuild failed: {e}"))?;
            Arc::new(pyramid)
        };
    }
    let mut writer = SnapshotWriter::new(&folded.tree, folded.kernel).with_applied_seq(upto);
    if !folded.pyramid.is_empty() {
        writer = writer.with_pyramid(
            folded
                .pyramid
                .levels()
                .iter()
                .map(|lv| (lv.tree.points().clone(), lv.eps_s))
                .collect(),
        );
    }
    writer
        .write_to(&snapshot_path)
        .map_err(|e| format!("dataset {name:?}: snapshot write failed: {e}"))?;

    // Swap point: WAL rewrite, catalog publish, memtable rebuild —
    // atomic with respect to writers (wal lock) and renders (mem
    // lock + the generation re-check).
    let mut wal = state.wal.lock().expect("wal state poisoned");
    let mut mem = state.mem.lock().expect("memtable poisoned");
    let remaining: Vec<WalRecord> = mem.ops.iter().filter(|r| r.seq > upto).cloned().collect();
    let tmp = state.wal_path.with_extension("wal.tmp");
    let err = |what: &str, e: StoreError| format!("dataset {name:?}: {what}: {e}");
    let mut w = WalWriter::create(&tmp).map_err(|e| err("cannot create rotated WAL", e))?;
    for rec in &remaining {
        w.append(rec).map_err(|e| err("cannot rewrite WAL", e))?;
    }
    w.sync().map_err(|e| err("cannot sync rotated WAL", e))?;
    if let Err(e) = std::fs::rename(&tmp, &state.wal_path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(format!(
            "dataset {name:?}: cannot swap rotated WAL into place: {e}"
        ));
    }
    if let Some(dir) = state.wal_path.parent() {
        fsync_dir(dir).map_err(|e| err("cannot sync store directory", e))?;
    }
    // The open handle follows the inode across the rename, so `w` IS
    // the live WAL now; no reopen window where a crash of ours could
    // strand acked appends in an unlinked file.
    wal.writer = w;
    wal.durable_seq = wal.next_seq - 1;
    mem.ops = remaining;
    let published = catalog.replace(idx, folded);
    *state.base.lock().expect("base entry poisoned") = Arc::clone(&published);
    mem.rebuild(published.tree.points());
    mem.last_seq = mem.last_seq.max(upto);
    state.generation.fetch_add(1, Ordering::SeqCst);
    state.flushed.notify_all();
    drop(mem);
    drop(wal);
    counters.compaction(started.elapsed().as_nanos() as u64);
    Ok(Some(published))
}

/// The logical point set `base + ops`: base points not tombstoned,
/// plus live appends — the same fold [`Memtable`] maintains
/// incrementally, materialized. Deterministic in (base, ops), so a
/// from-scratch rebuild after recovery is bit-for-bit identical.
fn merge_points(base: &PointSet, ops: &[WalRecord]) -> PointSet {
    let mut scratch = Memtable::default();
    for rec in ops {
        scratch.apply_op(rec, base);
    }
    let mut coords = Vec::with_capacity((base.len() + scratch.appends.len()) * 2);
    let mut weights = Vec::with_capacity(base.len() + scratch.appends.len());
    for i in 0..base.len() {
        let p = base.point(i);
        if scratch
            .removed_keys
            .contains(&(p[0].to_bits(), p[1].to_bits()))
        {
            continue;
        }
        coords.extend_from_slice(&[p[0], p[1]]);
        weights.push(base.weight(i));
    }
    for p in &scratch.appends {
        coords.extend_from_slice(&[p[0], p[1]]);
        weights.push(p[2]);
    }
    PointSet::from_vecs(2, coords, weights)
}

/// The distance beyond which `kernel` evaluates to exactly `0.0`
/// (bit-for-bit), or `None` when no such radius is known — the caller
/// must then invalidate everything. Compact kernels cut off at `1/γ`
/// (or `π/(2γ)` for cosine); Gaussian and exponential underflow to
/// zero once the profile argument passes ~745, which the bump loop
/// verifies against the actual kernel arithmetic.
pub(crate) fn support_radius(kernel: Kernel) -> Option<f64> {
    let base = match kernel.ty {
        KernelType::Gaussian => (750.0 / kernel.gamma).sqrt(),
        KernelType::Exponential => 750.0 / kernel.gamma,
        KernelType::Triangular | KernelType::Epanechnikov | KernelType::Quartic => {
            1.0 / kernel.gamma
        }
        KernelType::Cosine => std::f64::consts::FRAC_PI_2 / kernel.gamma,
    };
    if !(base.is_finite() && base > 0.0) {
        return None;
    }
    let mut r = base;
    for _ in 0..8 {
        if kernel.eval_dist2(r * r) == 0.0 {
            return Some(r);
        }
        // cos(π/2) and friends land a few ULPs shy of zero; nudge
        // outward until the real kernel agrees.
        r *= 1.0 + 1e-9;
    }
    None
}

/// The bounding rectangle `[x_lo, x_hi, y_lo, y_hi]` of the points an
/// op touches, or `None` for an empty op.
pub(crate) fn op_rect(op: &WalOp) -> Option<[f64; 4]> {
    let mut rect: Option<[f64; 4]> = None;
    let mut add = |x: f64, y: f64| {
        rect = Some(match rect {
            None => [x, x, y, y],
            Some(r) => [r[0].min(x), r[1].max(x), r[2].min(y), r[3].max(y)],
        });
    };
    match op {
        WalOp::Append(pts) => {
            for p in pts {
                add(p[0], p[1]);
            }
        }
        WalOp::Tombstone(cs) => {
            for c in cs {
                add(c[0], c[1]);
            }
        }
    }
    rect
}

/// Grows `rect` by `r` on every side (the kernel support dilation).
pub(crate) fn dilate_rect(rect: [f64; 4], r: f64) -> [f64; 4] {
    [rect[0] - r, rect[1] + r, rect[2] - r, rect[3] + r]
}

/// Whether pyramid tile `(z, x, y)` over `base`'s window intersects
/// `rect`. Pure window arithmetic (matches [`kdv_viz::tile_render::
/// pyramid_raster`]'s split: row 0 is maximum y), cheap enough to run
/// as a cache-eviction predicate under the shard locks.
pub(crate) fn tile_intersects(base: &RasterSpec, z: u8, x: u32, y: u32, rect: &[f64; 4]) -> bool {
    let ((wx0, wx1), (wy0, wy1)) = base.window();
    let n = f64::from(1u32 << z);
    let sx = (wx1 - wx0) / n;
    let sy = (wy1 - wy0) / n;
    let tx0 = wx0 + f64::from(x) * sx;
    let tx1 = wx0 + f64::from(x + 1) * sx;
    let ty1 = wy1 - f64::from(y) * sy;
    let ty0 = wy1 - f64::from(y + 1) * sy;
    tx1 >= rect[0] && tx0 <= rect[1] && ty1 >= rect[2] && ty0 <= rect[3]
}

/// εKDV over the logical (base + memtable) point set: the base engine
/// refines each pixel under `budget`, then the exact memtable delta is
/// added on top. Returns the density grid and the budget-degraded
/// pixel count.
pub(crate) fn render_eps_delta(
    ev: &mut RefineEvaluator<'_>,
    raster: &RasterSpec,
    eps: f64,
    budget: &mut RenderBudget,
    delta: &DeltaView,
    kernel: Kernel,
) -> Result<(DensityGrid, u64), KdvError> {
    let mut grid = DensityGrid::zeros(raster.width(), raster.height());
    let mut degraded = 0u64;
    for row in 0..raster.height() {
        for col in 0..raster.width() {
            let q = raster.pixel_center(col, row);
            let e = ev.eval_eps_budgeted(&q, eps, budget)?;
            grid.set(col, row, e.estimate() + delta.delta_at(&q, kernel));
            degraded += u64::from(e.exhausted);
        }
    }
    Ok((grid, degraded))
}

/// τKDV over the logical point set: each pixel classifies the base
/// density against the *shifted* threshold `τ − δ(q)`. When the shift
/// drives the threshold to zero or below, the pixel is hot without
/// touching the engine (base density is never negative). Returns the
/// mask and the undecided pixel count.
pub(crate) fn render_tau_delta(
    ev: &mut RefineEvaluator<'_>,
    raster: &RasterSpec,
    tau: f64,
    budget: &mut RenderBudget,
    delta: &DeltaView,
    kernel: Kernel,
) -> Result<(BinaryGrid, u64), KdvError> {
    let mut mask = BinaryGrid::falses(raster.width(), raster.height());
    let mut undecided = 0u64;
    for row in 0..raster.height() {
        for col in 0..raster.width() {
            let q = raster.pixel_center(col, row);
            let shifted = tau - delta.delta_at(&q, kernel);
            if shifted <= 0.0 {
                mask.set(col, row, true);
            } else {
                let t = ev.eval_tau_budgeted(&q, shifted, budget)?;
                mask.set(col, row, t.hot);
                undecided += u64::from(!t.decided);
            }
        }
    }
    Ok((mask, undecided))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::RenderSettings;

    /// A catalog + ingest state over a 3-point snapshot in a fresh
    /// temp directory (caller removes the directory).
    fn open_fixture(tag: &str) -> (PathBuf, Catalog, IngestState, IngestCounters) {
        let dir =
            std::env::temp_dir().join(format!("kdv-ingest-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let points = base_set();
        let tree = KdTree::build_default(&points);
        SnapshotWriter::new(&tree, Kernel::gaussian(0.8))
            .write_to(dir.join("unit.kdvs"))
            .expect("snapshot");
        let settings = RenderSettings {
            tile_size: 16,
            margin_frac: 0.05,
            eps: 0.2,
        };
        let catalog = Catalog::open(&dir, 0, settings).expect("catalog");
        let entry = catalog.get(0).expect("entry");
        let counters = IngestCounters::default();
        let state = IngestState::open(dir.join("unit.wal"), &entry, FsyncPolicy::Every, &counters)
            .expect("ingest state");
        (dir, catalog, state, counters)
    }

    fn base_set() -> PointSet {
        // Two points sharing a coordinate (weights 0.2 + 0.3), one
        // lone point.
        PointSet::from_vecs(2, vec![1.0, 1.0, 1.0, 1.0, 4.0, 5.0], vec![0.2, 0.3, 0.5])
    }

    fn rec(seq: u64, op: WalOp) -> WalRecord {
        WalRecord { seq, op }
    }

    #[test]
    fn memtable_folds_appends_and_tombstones_like_an_lsm() {
        let base = base_set();
        let mut mem = Memtable::default();
        mem.apply(&rec(1, WalOp::Append(vec![[2.0, 2.0, 0.7]])), &base);
        assert_eq!(mem.appends.len(), 1);
        // Tombstone kills the live append AND hides both base points
        // at (1,1).
        mem.apply(
            &rec(2, WalOp::Tombstone(vec![[2.0, 2.0], [1.0, 1.0]])),
            &base,
        );
        assert!(mem.appends.is_empty());
        assert_eq!(mem.removed.len(), 1);
        assert!((mem.removed[0][2] - 0.5).abs() < 1e-15);
        // A second tombstone of the same base coordinate must not
        // double-subtract.
        mem.apply(&rec(3, WalOp::Tombstone(vec![[1.0, 1.0]])), &base);
        assert_eq!(mem.removed.len(), 1);
        // An append after the tombstone is a new live point.
        mem.apply(&rec(4, WalOp::Append(vec![[1.0, 1.0, 0.9]])), &base);
        assert_eq!(mem.appends.len(), 1);
        assert_eq!(mem.last_seq, 4);
        assert_eq!(mem.epoch, 4);
        assert_eq!(mem.point_count(), 2);
    }

    #[test]
    fn delta_matches_brute_force_merge() {
        let base = base_set();
        let kernel = Kernel::gaussian(0.8);
        let mut mem = Memtable::default();
        mem.apply(
            &rec(1, WalOp::Append(vec![[2.0, 2.5, 0.7], [3.0, 0.5, 0.4]])),
            &base,
        );
        mem.apply(&rec(2, WalOp::Tombstone(vec![[1.0, 1.0]])), &base);
        let ops = mem.ops.clone();
        let delta = DeltaView {
            appends: mem.appends.clone(),
            removed: mem.removed.clone(),
            epoch: mem.epoch,
        };
        let merged = merge_points(&base, &ops);
        let q = [1.7, 1.9];
        let density = |ps: &PointSet| {
            (0..ps.len())
                .map(|i| {
                    let p = ps.point(i);
                    let d2 = (q[0] - p[0]).powi(2) + (q[1] - p[1]).powi(2);
                    ps.weight(i) * kernel.eval_dist2(d2)
                })
                .sum::<f64>()
        };
        let merged_density = density(&merged);
        let delta_density = density(&base) + delta.delta_at(&q, kernel);
        assert!(
            (merged_density - delta_density).abs() < 1e-12,
            "merged {merged_density} vs base+delta {delta_density}"
        );
    }

    #[test]
    fn merge_points_is_deterministic_and_complete() {
        let base = base_set();
        let ops = vec![
            rec(1, WalOp::Append(vec![[9.0, 9.0, 0.1]])),
            rec(2, WalOp::Tombstone(vec![[4.0, 5.0]])),
        ];
        let a = merge_points(&base, &ops);
        let b = merge_points(&base, &ops);
        assert_eq!(a.coords(), b.coords());
        assert_eq!(a.weights(), b.weights());
        // (1,1) twice survives, (4,5) hidden, (9,9) appended.
        assert_eq!(a.len(), 3);
        assert!(!a.coords().chunks(2).any(|c| c == [4.0, 5.0]));
    }

    #[test]
    fn support_radius_is_a_true_zero_cutoff() {
        for ty in KernelType::ALL {
            for gamma in [0.05, 1.0, 37.5] {
                let kernel = Kernel::new(ty, gamma);
                let r = support_radius(kernel)
                    .unwrap_or_else(|| panic!("{ty:?} γ={gamma} has no radius"));
                assert_eq!(
                    kernel.eval_dist2(r * r),
                    0.0,
                    "{ty:?} γ={gamma} not zero at r={r}"
                );
                let inside = 0.98 * r;
                assert!(
                    kernel.eval_dist2(inside * inside) > 0.0,
                    "{ty:?} γ={gamma} already zero inside its support"
                );
            }
        }
    }

    #[test]
    fn tombstones_resolve_against_the_base_a_compaction_just_published() {
        let (dir, catalog, state, counters) = open_fixture("swap");
        // Append a fresh point and fold it into a new base snapshot.
        state
            .commit(WalOp::Append(vec![[2.0, 2.0, 0.7]]), &counters)
            .expect("append");
        compact(&state, &catalog, 0, &counters)
            .expect("compact")
            .expect("memtable was non-empty");
        assert_eq!(state.base_entry().tree.points().len(), 4);
        // Tombstoning that point now must find its weight in the *new*
        // base — the pre-compaction base never contained (2, 2), so a
        // commit resolving a stale base would hide nothing and renders
        // would silently under-subtract until the next compaction.
        state
            .commit(WalOp::Tombstone(vec![[2.0, 2.0]]), &counters)
            .expect("tombstone");
        let delta = state.delta();
        assert!(delta.appends.is_empty());
        assert_eq!(delta.removed, vec![[2.0, 2.0, 0.7]]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn commits_that_would_empty_the_dataset_are_refused() {
        let (dir, _catalog, state, counters) = open_fixture("empty");
        // The base holds coordinates (1,1) and (4,5).
        assert!(state.would_empty(&[], &[[1.0, 1.0], [4.0, 5.0]]));
        assert!(!state.would_empty(&[], &[[1.0, 1.0]]));
        // A batch append that survives its own removes keeps the
        // dataset alive; one tombstoned by the same batch does not.
        assert!(!state.would_empty(&[[9.0, 9.0, 1.0]], &[[1.0, 1.0], [4.0, 5.0]]));
        assert!(state.would_empty(&[[9.0, 9.0, 1.0]], &[[9.0, 9.0], [1.0, 1.0], [4.0, 5.0]]));
        // The commit-time backstop refuses the final tombstone even
        // when the emptying happens incrementally.
        state
            .commit(WalOp::Tombstone(vec![[1.0, 1.0]]), &counters)
            .expect("partial tombstone is fine");
        let refused = state.commit(WalOp::Tombstone(vec![[4.0, 5.0]]), &counters);
        assert!(matches!(refused, Err(CommitError::WouldEmpty)));
        // Nothing from the refused op reached the WAL or the memtable.
        let status = state.status();
        assert_eq!(status.last_seq, 1);
        assert_eq!(status.removed, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tile_rects_match_the_pyramid_split() {
        let ps = base_set();
        let base = RasterSpec::try_covering(&ps, 16, 16, 0.1).expect("raster");
        // A rectangle hugging the window's top-left corner touches
        // tile (0,0) at z=1 (row 0 is maximum y) and not (1,1).
        let ((wx0, _), (_, wy1)) = base.window();
        let rect = [wx0, wx0 + 1e-6, wy1 - 1e-6, wy1];
        assert!(tile_intersects(&base, 1, 0, 0, &rect));
        assert!(!tile_intersects(&base, 1, 1, 1, &rect));
        // Every tile of a level intersects the full window.
        let ((x0, x1), (y0, y1)) = base.window();
        let full = [x0, x1, y0, y1];
        for x in 0..4 {
            for y in 0..4 {
                assert!(tile_intersects(&base, 2, x, y, &full));
            }
        }
    }
}

//! The sharded, byte-capacity LRU tile cache.
//!
//! Tiles are immutable once rendered — a cache key pins every input
//! that affects the bytes (address, query parameter, kernel bandwidth)
//! — so the cache never invalidates, only evicts for space. Capacity
//! is counted in *payload bytes*, not entries: one z0 PNG of a dense
//! map can outweigh a hundred empty ocean tiles, and an entry-count
//! cap would let memory use drift by two orders of magnitude.
//!
//! Concurrency: the key hashes (FNV-1a, fixed seed — deterministic
//! across runs and platforms) to one of N shards, each a small
//! mutex-guarded LRU. Worker threads rendering different tiles
//! contend only when their tiles share a shard; the monotone hit/miss
//! counters live outside the locks entirely
//! ([`kdv_telemetry::CacheCounters`]).
//!
//! Eviction within a shard is exact LRU via access stamps; the victim
//! scan is linear in the shard's entry count, which stays small (tiles
//! are tens of kilobytes, shards a few megabytes) — simplicity over a
//! doubly-linked intrusive list the borrow checker fights.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use kdv_telemetry::{CacheCounters, CacheSnapshot};

use crate::tile::TileAddr;

/// Everything that determines a rendered tile's bytes.
///
/// The float parameters enter as IEEE-754 bit patterns: bitwise
/// equality is exactly "same render", and `NaN`/`-0.0` oddities cannot
/// poison `Eq`/`Hash`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileKey {
    /// Catalog slot index of the dataset (0 in single-dataset mode).
    /// Two datasets can share an address, ε, and γ yet render
    /// different bytes, so the dataset is part of the key.
    pub dataset: u32,
    /// The pyramid address (kind, z, x, y).
    pub addr: TileAddr,
    /// `ε.to_bits()` for εKDV tiles, `τ.to_bits()` for τKDV tiles.
    pub param_bits: u64,
    /// Kernel bandwidth `γ.to_bits()`.
    pub gamma_bits: u64,
    /// Coreset pyramid level that rendered the tile
    /// ([`crate::server::FULL_LEVEL`] for the full index). A compaction
    /// that re-certifies the ladder can shift the pick; keying on the
    /// level keeps stale-level bytes from surviving the swap.
    pub level: u8,
}

struct Entry {
    data: Arc<Vec<u8>>,
    /// Shard-clock reading of the last access (higher = more recent).
    stamp: u64,
}

struct Shard {
    map: HashMap<TileKey, Entry>,
    /// Payload bytes currently held.
    bytes: usize,
    /// Monotone access clock feeding the LRU stamps.
    clock: u64,
}

/// A sharded LRU cache of encoded tiles with a byte-capacity bound.
pub struct TileCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    counters: CacheCounters,
}

impl TileCache {
    /// A cache holding at most `capacity_bytes` of payload across
    /// `shards` independent shards (each gets an equal slice of the
    /// capacity). `shards` is clamped to at least 1.
    pub fn new(capacity_bytes: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        bytes: 0,
                        clock: 0,
                    })
                })
                .collect(),
            shard_capacity: capacity_bytes / shards,
            counters: CacheCounters::default(),
        }
    }

    /// Which shard `key` lives in. Deterministic across cache
    /// instances, runs, and platforms (fixed-seed FNV-1a) — so a test
    /// or an operator can reason about shard placement offline.
    pub fn shard_index(&self, key: &TileKey) -> usize {
        // FNV-1a over the key's canonical little-endian bytes.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(&key.dataset.to_le_bytes());
        eat(&[key.addr.kind as u8, key.addr.z]);
        eat(&key.addr.x.to_le_bytes());
        eat(&key.addr.y.to_le_bytes());
        eat(&key.param_bits.to_le_bytes());
        eat(&key.gamma_bits.to_le_bytes());
        eat(&[key.level]);
        (h % self.shards.len() as u64) as usize
    }

    /// Looks up a tile, refreshing its recency on a hit.
    pub fn get(&self, key: &TileKey) -> Option<Arc<Vec<u8>>> {
        let mut shard = self.shards[self.shard_index(key)]
            .lock()
            .expect("cache shard poisoned");
        shard.clock += 1;
        let stamp = shard.clock;
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.stamp = stamp;
                let data = Arc::clone(&entry.data);
                drop(shard);
                self.counters.hit();
                Some(data)
            }
            None => {
                drop(shard);
                self.counters.miss();
                None
            }
        }
    }

    /// Inserts (or refreshes) a tile, evicting least-recently-used
    /// entries from its shard until the shard fits its capacity slice.
    /// Returns `false` when the payload alone exceeds a whole shard's
    /// capacity — such a tile is served but never cached, rather than
    /// flushing everything else to make room for one entry.
    pub fn insert(&self, key: TileKey, data: Arc<Vec<u8>>) -> bool {
        if data.len() > self.shard_capacity {
            return false;
        }
        let mut shard = self.shards[self.shard_index(&key)]
            .lock()
            .expect("cache shard poisoned");
        shard.clock += 1;
        let stamp = shard.clock;
        let added = data.len();
        if let Some(old) = shard.map.insert(key, Entry { data, stamp }) {
            shard.bytes -= old.data.len();
        }
        shard.bytes += added;
        let mut evicted = Vec::new();
        while shard.bytes > self.shard_capacity {
            let victim = shard
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
                .expect("shard over capacity implies an evictable entry");
            let entry = shard.map.remove(&victim).expect("victim exists");
            shard.bytes -= entry.data.len();
            evicted.push(entry.data.len() as u64);
        }
        drop(shard);
        self.counters.insert();
        for bytes in evicted {
            self.counters.evict(bytes);
        }
        true
    }

    /// Removes one entry if present, returning whether it was there.
    /// Used by a renderer cancelling its own just-inserted tile after
    /// detecting that a concurrent write invalidated the region
    /// between its freshness check and the insert.
    pub fn remove(&self, key: &TileKey) -> bool {
        let mut shard = self.shards[self.shard_index(key)]
            .lock()
            .expect("cache shard poisoned");
        match shard.map.remove(key) {
            Some(entry) => {
                shard.bytes -= entry.data.len();
                true
            }
            None => false,
        }
    }

    /// Removes every entry whose key satisfies `pred`, returning how
    /// many were dropped. This is the ingest path's correctness hook:
    /// a cached tile whose pixels a new point could have changed must
    /// not outlive the write, so the server invalidates by
    /// MBR-intersection after each acked batch. Shards are swept one
    /// at a time — readers of other shards never block — and the
    /// predicate runs under the shard lock, so it must be cheap (a
    /// rectangle test, not a render).
    pub fn invalidate_where(&self, pred: impl Fn(&TileKey) -> bool) -> u64 {
        let mut removed = 0u64;
        for s in &self.shards {
            let mut shard = s.lock().expect("cache shard poisoned");
            let victims: Vec<TileKey> = shard.map.keys().filter(|k| pred(k)).copied().collect();
            for k in victims {
                let entry = shard.map.remove(&k).expect("victim exists");
                shard.bytes -= entry.data.len();
                removed += 1;
            }
        }
        removed
    }

    /// Total payload bytes currently held, across shards.
    pub fn bytes_used(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").bytes)
            .sum()
    }

    /// Number of cached tiles, across shards.
    pub fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// One reading of the monotone hit/miss/eviction counters.
    pub fn snapshot(&self) -> CacheSnapshot {
        self.counters.snapshot()
    }

    /// Recomputes every shard's byte occupancy from its entries and
    /// asserts it matches the running total and fits the capacity.
    /// Cheap enough to call from tests after concurrent hammering.
    pub fn assert_consistent(&self) {
        for (i, s) in self.shards.iter().enumerate() {
            let shard = s.lock().expect("cache shard poisoned");
            let actual: usize = shard.map.values().map(|e| e.data.len()).sum();
            assert_eq!(shard.bytes, actual, "shard {i} byte accounting drifted");
            assert!(
                shard.bytes <= self.shard_capacity,
                "shard {i} over capacity: {} > {}",
                shard.bytes,
                self.shard_capacity
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::TileKind;

    fn key(z: u8, x: u32, y: u32) -> TileKey {
        TileKey {
            dataset: 0,
            addr: TileAddr {
                kind: TileKind::Eps,
                z,
                x,
                y,
            },
            param_bits: 0.05f64.to_bits(),
            gamma_bits: 1.5f64.to_bits(),
            level: 0xFF,
        }
    }

    fn payload(n: usize, fill: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![fill; n])
    }

    #[test]
    fn hits_after_insert_and_misses_before() {
        let cache = TileCache::new(1 << 20, 4);
        assert!(cache.get(&key(0, 0, 0)).is_none());
        assert!(cache.insert(key(0, 0, 0), payload(100, 1)));
        assert_eq!(cache.get(&key(0, 0, 0)).expect("hit").len(), 100);
        // Same address, different ε: a different tile.
        let mut other = key(0, 0, 0);
        other.param_bits = 0.01f64.to_bits();
        assert!(cache.get(&other).is_none());
        // Same address, different dataset: also a different tile.
        let mut other_ds = key(0, 0, 0);
        other_ds.dataset = 1;
        assert!(cache.get(&other_ds).is_none());
        // Same address, different pyramid level: also a different tile.
        let mut other_lv = key(0, 0, 0);
        other_lv.level = 1;
        assert!(cache.get(&other_lv).is_none());
        let s = cache.snapshot();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 4, 1));
    }

    #[test]
    fn evicts_least_recently_used_first() {
        // One shard, room for exactly two 100-byte tiles.
        let cache = TileCache::new(200, 1);
        cache.insert(key(1, 0, 0), payload(100, 1));
        cache.insert(key(1, 0, 1), payload(100, 2));
        // Touch the older entry so the *other* one becomes LRU.
        assert!(cache.get(&key(1, 0, 0)).is_some());
        cache.insert(key(1, 1, 0), payload(100, 3));
        assert!(cache.get(&key(1, 0, 0)).is_some(), "recently used survives");
        assert!(cache.get(&key(1, 0, 1)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(1, 1, 0)).is_some());
        let s = cache.snapshot();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.evicted_bytes, 100);
        cache.assert_consistent();
    }

    #[test]
    fn byte_accounting_tracks_inserts_replacements_and_evictions() {
        let cache = TileCache::new(1000, 1);
        cache.insert(key(2, 0, 0), payload(300, 1));
        cache.insert(key(2, 1, 0), payload(300, 2));
        assert_eq!(cache.bytes_used(), 600);
        // Replacing a key swaps its bytes, not adds them.
        cache.insert(key(2, 0, 0), payload(500, 3));
        assert_eq!(cache.bytes_used(), 800);
        assert_eq!(cache.entries(), 2);
        // Overflow evicts until it fits again.
        cache.insert(key(2, 0, 1), payload(400, 4));
        assert!(cache.bytes_used() <= 1000);
        cache.assert_consistent();
        // A payload larger than a whole shard is refused, not churned.
        assert!(!cache.insert(key(2, 1, 1), payload(2000, 5)));
        assert!(cache.get(&key(2, 1, 1)).is_none());
        cache.assert_consistent();
    }

    #[test]
    fn invalidate_where_removes_matches_and_keeps_accounting() {
        let cache = TileCache::new(1 << 20, 4);
        for z in 0..3u8 {
            for x in 0..4u32 {
                assert!(cache.insert(key(z, x, 0), payload(50, z)));
            }
        }
        assert_eq!(cache.entries(), 12);
        let removed = cache.invalidate_where(|k| k.addr.z == 1);
        assert_eq!(removed, 4);
        assert_eq!(cache.entries(), 8);
        assert_eq!(cache.bytes_used(), 8 * 50);
        assert!(cache.get(&key(1, 0, 0)).is_none());
        assert!(cache.get(&key(0, 0, 0)).is_some());
        assert_eq!(cache.invalidate_where(|_| false), 0);
        cache.assert_consistent();
    }

    #[test]
    fn remove_drops_one_entry_and_keeps_accounting() {
        let cache = TileCache::new(1 << 20, 4);
        assert!(!cache.remove(&key(0, 0, 0)), "removing a miss is a no-op");
        cache.insert(key(0, 0, 0), payload(100, 1));
        cache.insert(key(0, 1, 0), payload(100, 2));
        assert!(cache.remove(&key(0, 0, 0)));
        assert!(cache.get(&key(0, 0, 0)).is_none());
        assert!(cache.get(&key(0, 1, 0)).is_some());
        assert_eq!(cache.bytes_used(), 100);
        cache.assert_consistent();
    }

    #[test]
    fn shard_placement_is_deterministic() {
        let a = TileCache::new(1 << 20, 8);
        let b = TileCache::new(1 << 30, 8);
        let mut seen = std::collections::HashSet::new();
        for z in 0..4u8 {
            for x in 0..8u32 {
                for y in 0..8u32 {
                    let k = key(z, x, y);
                    let idx = a.shard_index(&k);
                    assert_eq!(
                        idx,
                        b.shard_index(&k),
                        "placement differs between instances"
                    );
                    assert!(idx < 8);
                    seen.insert(idx);
                }
            }
        }
        assert!(seen.len() > 4, "FNV should spread tiles across shards");
    }

    #[test]
    fn concurrent_hammering_loses_no_updates() {
        let cache = Arc::new(TileCache::new(64 * 100, 4));
        let threads = 8;
        let per_thread = 2000u32;
        let mut handles = Vec::new();
        for t in 0..threads {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    // 32 distinct keys, far more traffic than capacity:
                    // constant eviction pressure plus real hits.
                    let k = key(5, (i + t) % 8, i % 4);
                    if cache.get(&k).is_none() {
                        cache.insert(k, payload(100, t as u8));
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("hammer thread panicked");
        }
        cache.assert_consistent();
        let s = cache.snapshot();
        assert_eq!(
            s.hits + s.misses,
            (threads as u64) * (per_thread as u64),
            "every lookup is counted exactly once"
        );
        assert_eq!(
            s.misses, s.insertions,
            "each miss triggered exactly one insert (all payloads fit)"
        );
        assert!(s.hits > 0, "the keyspace is small enough to produce hits");
    }
}

//! The tile server: worker pool, admission control, routing.
//!
//! Architecture (one process, no async runtime):
//!
//! * an **accept thread** owns the `TcpListener`. Each accepted
//!   connection is pushed onto a *bounded* queue; when the queue is
//!   full the accept thread answers `429 Too Many Requests` with a
//!   `Retry-After` hint itself rather than letting latency grow
//!   without bound — load shedding at the door, not in the kitchen,
//! * a fixed pool of **worker threads** pops connections, parses one
//!   request, routes it, and closes the socket (`Connection: close` by
//!   default; a client that sends an explicit `Connection: keep-alive`
//!   — the cluster router's proxy path does — keeps the connection,
//!   and the worker serves follow-up requests from the same read
//!   buffer under a short idle timeout),
//! * the dataset's kd-tree is built **once** at startup and shared
//!   immutably (`Arc`); each request constructs its own cheap
//!   [`RefineEvaluator`] over the shared tree,
//! * every tile render runs under a fresh [`RenderBudget`] issued by
//!   the configured [`BudgetPolicy`], so one adversarial tile degrades
//!   (HTTP `200` + `X-Kdv-Degraded`) instead of starving the pool,
//! * rendered tiles land in the sharded byte-capacity LRU
//!   ([`crate::cache`]) — except degraded ones: caching a tile that
//!   only exists because the server was momentarily overloaded would
//!   serve the degraded bytes forever after the load has passed,
//! * every request is **traced** end to end (on by default): the
//!   accept timestamp is the span origin, each stage — queue wait,
//!   parse, cache lookup, catalog materialization, refinement, PNG
//!   encode, socket write — is a named span with work/byte
//!   annotations, and the completed trace lands in a bounded
//!   [`TraceRing`] served at `/debug/traces` (slow traces are retained
//!   preferentially at `/debug/slow`). The trace ID is echoed on every
//!   response as `X-Kdv-Trace-Id`. With `--no-trace` the builder is
//!   inert: no clock reads, no allocation, no ring pushes.
//!
//! [`RenderBudget`]: kdv_core::engine::RenderBudget

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use kdv_core::bounds::BoundFamily;
use kdv_core::engine::{BudgetPolicy, RefineEvaluator, TileEvaluator};
use kdv_core::error::KdvError;
use kdv_core::kernel::Kernel;
use kdv_core::raster::RasterSpec;
use kdv_geom::{Mbr, PointSet};
use kdv_index::{KdTree, NodeId};
use kdv_store::{FsyncPolicy, WalOp};
use kdv_telemetry::json::{self, Value};
use kdv_telemetry::{
    DepthProfile, HttpCounters, IngestCounters, LogHistogram, PromWriter, PyramidCounters,
    RenderMetrics, TagValue, Trace, TraceBuilder, TraceId, TraceMeta, TraceRing,
    MAX_TRACKED_LEVELS,
};
use kdv_viz::colormap::render_binary;
use kdv_viz::render::BinaryGrid;
use kdv_viz::tile_render::{
    pyramid_raster, render_tile_eps, render_tile_eps_batched, render_tile_eps_batched_probed,
    render_tile_eps_probed, render_tile_tau, render_tile_tau_batched,
    render_tile_tau_batched_probed, render_tile_tau_probed, TileImage,
};
use kdv_viz::tiles::{certify_box, BoxCertification};
use kdv_viz::{png, ColorMap};

use crate::cache::{TileCache, TileKey};
use crate::catalog::{finish_entry, Catalog, DatasetEntry, DatasetSource, RenderSettings};
use crate::http::{read_request_from, text_response, Request, RequestError, Response};
use crate::ingest::{self, CommitError, DeltaView, IngestState};
use crate::pyramid::{self, FULL_LEVEL};
use crate::tile::{parse_tile_path, valid_dataset_name, TileAddr, TileKind};

/// Per-connection socket timeouts: a stuck client costs a worker at
/// most this long.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(5);

/// Upper bound on remembered τ-tile frontiers (see
/// [`Inner::frontiers`]); beyond it new frontiers are simply not
/// recorded — children fall back to the kd-tree root, which is
/// correct, just slower.
const MAX_STORED_FRONTIERS: usize = 1 << 16;

/// Longest `/debug/sleep/{ms}` pause honored.
const MAX_DEBUG_SLEEP_MS: u64 = 10_000;

/// Everything `kdv serve` needs to decide before binding a socket.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 picks a free one).
    pub addr: String,
    /// Tile edge length in pixels (tiles are square).
    pub tile_size: u32,
    /// Deepest zoom level served (tile addresses beyond it are `400`).
    pub max_z: u8,
    /// Deepest zoom level the coreset pyramid may answer; deeper tiles
    /// always render from the full index. Pyramid routing additionally
    /// requires a certified level with `ε_s ≤ ε/2`.
    pub pyramid_max_z: u8,
    /// εKDV error tolerance.
    pub eps: f64,
    /// τKDV density threshold.
    pub tau: f64,
    /// Worker threads rendering tiles.
    pub workers: usize,
    /// Bounded accept-queue depth; connection `workers + queue + 1`
    /// gets a `429`.
    pub queue: usize,
    /// Tile-cache capacity in payload bytes.
    pub cache_bytes: usize,
    /// Tile-cache shard count.
    pub cache_shards: usize,
    /// Per-request render budget recipe.
    pub policy: BudgetPolicy,
    /// Margin added around the data's bounding box for the level-0
    /// window (fraction of each axis span).
    pub margin_frac: f64,
    /// Honor `GET /shutdown` (for CI and tests; off by default).
    pub allow_shutdown: bool,
    /// Honor `GET /debug/sleep/{ms}` (a testing aid that holds a
    /// worker busy; off by default).
    pub debug_sleep: bool,
    /// Milliseconds the caller spent loading the raw data before
    /// handing it over (the CLI measures its CSV read); folded into
    /// the startup report so `startup.total_ms` is honest end-to-end.
    pub data_load_ms: u64,
    /// Estimated-byte budget across materialized catalog datasets
    /// (store mode only); 0 disables eviction.
    pub store_budget_bytes: u64,
    /// Record per-request traces (spans, `/debug/traces`, stage
    /// histograms). On by default; `--no-trace` turns the builder into
    /// a no-op with zero clock reads on the request path.
    pub trace: bool,
    /// Completed traces retained in each ring (recent and slow).
    pub trace_ring: usize,
    /// Requests at or over this many milliseconds end-to-end are
    /// retained preferentially in the slow ring (`/debug/slow`).
    pub slow_ms: u64,
    /// JSON-lines access log destination: a file path, or `-` for
    /// stdout. `None` disables the log. Setting it forces tracing on
    /// (log lines are derived from the completed trace).
    pub access_log: Option<String>,
    /// Materialize every catalog dataset in the background at boot;
    /// `/readyz` answers `503` until the sweep finishes. Off by
    /// default: datasets load lazily and `/readyz` is ready at bind.
    pub preload: bool,
    /// WAL durability policy for streaming ingest: `Every` fsyncs per
    /// acknowledged record, `Batch` group-commits (one fsync covers
    /// every record appended before it started).
    pub fsync: FsyncPolicy,
    /// Largest accepted ingest request body in bytes; a declared
    /// `Content-Length` over it is refused with `413` before the body
    /// is read.
    pub ingest_max_body: u64,
    /// Memtable size (points) beyond which ingest writes are shed
    /// with `429 Retry-After` until compaction catches up.
    pub memtable_points: usize,
    /// Memtable size (points) that triggers a background compaction
    /// folding the log into a fresh snapshot.
    pub compact_points: usize,
    /// Use the explicit SIMD leaf-scan path when the CPU supports it.
    /// `--no-simd` turns it off process-wide (the scalar path is
    /// bit-identical; this is an escape hatch for triage).
    pub simd: bool,
    /// Route cold base-index tiles through the tile-batched frontier
    /// engine instead of independent per-pixel refinement. Off
    /// (`--no-batch`), every pixel refines from the kd-tree root.
    pub batch: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            tile_size: 256,
            max_z: 5,
            pyramid_max_z: 4,
            eps: 0.05,
            tau: 1e-3,
            workers: 4,
            queue: 64,
            cache_bytes: 64 << 20,
            cache_shards: 8,
            policy: BudgetPolicy::unlimited(),
            margin_frac: 0.05,
            allow_shutdown: false,
            debug_sleep: false,
            data_load_ms: 0,
            store_budget_bytes: 0,
            trace: true,
            trace_ring: 128,
            slow_ms: 100,
            access_log: None,
            preload: false,
            fsync: FsyncPolicy::Every,
            ingest_max_body: 1 << 20,
            memtable_points: 8192,
            compact_points: 2048,
            simd: true,
            batch: true,
        }
    }
}

/// Where the boot time went, for the startup log line and `/metrics`.
///
/// The store exists to shrink `index_ms`: building the kd-tree and its
/// moments is the dominant cost, and a snapshot-backed boot replaces it
/// with a directory scan (datasets then load lazily, off the boot
/// path).
#[derive(Debug, Clone, Copy)]
pub struct StartupReport {
    /// End-to-end milliseconds from data to accepting sockets.
    pub total_ms: u64,
    /// Reading the raw data (reported by the caller; 0 when unknown).
    pub data_load_ms: u64,
    /// Building the index — or, in store mode, scanning the catalog.
    pub index_ms: u64,
    /// The εKDV color-scale sweep (pyramid warm-up).
    pub warm_ms: u64,
    /// `"built"` for an in-process tree, `"catalog"` for a store boot.
    pub source: &'static str,
}

impl StartupReport {
    fn to_json(self) -> Value {
        Value::obj(vec![
            ("total_ms", json::num_u(self.total_ms)),
            ("data_load_ms", json::num_u(self.data_load_ms)),
            ("index_ms", json::num_u(self.index_ms)),
            ("warm_ms", json::num_u(self.warm_ms)),
            ("source", Value::Str(self.source.to_string())),
        ])
    }
}

/// Why the server failed to start.
#[derive(Debug)]
pub enum ServeError {
    /// A configuration or dataset problem.
    Config(String),
    /// A socket-layer failure (bind, listen).
    Io(io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(m) => write!(f, "configuration error: {m}"),
            ServeError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<KdvError> for ServeError {
    fn from(e: KdvError) -> Self {
        ServeError::Config(e.to_string())
    }
}

/// Inherited τ-certification frontiers, keyed by dataset slot + tile
/// address (τ tiles only — ε tiles have no transferable certificate).
type FrontierMap = HashMap<(u32, u8, u32, u32), Arc<Vec<NodeId>>>;

/// The fixed span taxonomy, in pipeline order. Every traced request
/// passes through a subset of these; `/metrics` exposes one latency
/// histogram per stage under this exact name set.
pub const STAGES: [&str; 8] = [
    "queue", "parse", "cache", "catalog", "ingest", "render", "encode", "write",
];

/// Per-stage latency histograms (microseconds), fed from completed
/// traces — so they cost nothing when tracing is off.
struct StageStats {
    stages: [LogHistogram; STAGES.len()],
    /// End-to-end (accept → response written) latency.
    total: LogHistogram,
}

impl StageStats {
    fn new() -> Self {
        Self {
            stages: std::array::from_fn(|_| LogHistogram::new()),
            total: LogHistogram::new(),
        }
    }

    fn record(&mut self, trace: &Trace) {
        for span in &trace.spans {
            if let Some(i) = STAGES.iter().position(|s| *s == span.name) {
                self.stages[i].record(span.dur_us);
            }
        }
        self.total.record(trace.total_us);
    }
}

/// Per-request trace state threaded through routing: the span builder
/// plus the metadata bits ([`TraceMeta`]) that are only known deep in
/// the tile path (cache disposition, degradation).
struct RequestTrace {
    tb: TraceBuilder,
    cache: Option<&'static str>,
    degraded: bool,
}

impl RequestTrace {
    fn new(inner: &Inner, accepted: Instant) -> Self {
        Self {
            tb: if inner.traces.is_some() {
                TraceBuilder::with_origin(accepted)
            } else {
                TraceBuilder::off()
            },
            cache: None,
            degraded: false,
        }
    }
}

/// Shared immutable server state plus the few mutable rendezvous
/// points (cache shards, metrics, frontiers — each behind its own
/// fine-grained lock or atomic).
struct Inner {
    /// Every dataset this server fronts. Single-dataset mode is a
    /// one-slot catalog; store mode scans a directory and loads lazily.
    catalog: Catalog,
    /// Whether tile paths carry a `{dataset}` segment (store mode).
    multi: bool,
    family: BoundFamily,
    eps: f64,
    tau: f64,
    cm: ColorMap,
    policy: BudgetPolicy,
    /// Cold base-index tiles refine through the tile-batched frontier
    /// engine (shared bound work amortized across the pixel block);
    /// `--no-batch` falls back to independent per-pixel refinement.
    batch: bool,
    max_z: u8,
    /// Deepest zoom the coreset pyramid may answer.
    pyramid_max_z: u8,
    /// Which level (or the full index) served each render, plus the
    /// τ-band exact-fallback pixel tally.
    pyramid: PyramidCounters,
    cache: TileCache,
    http: HttpCounters,
    /// Live merged refinement telemetry across all tile renders.
    metrics: Mutex<RenderMetrics>,
    /// Parent→child bound reuse: an undecided τ tile's refined node
    /// frontier is valid for all four children (bounds certified for a
    /// box hold for any sub-box), so children start refinement there
    /// instead of at the kd-tree root.
    frontiers: Mutex<FrontierMap>,
    startup: StartupReport,
    shutdown: AtomicBool,
    allow_shutdown: bool,
    debug_sleep: bool,
    local_addr: SocketAddr,
    started: Instant,
    /// Completed-trace retention; `None` when tracing is disabled.
    traces: Option<TraceRing>,
    /// Per-stage latency histograms, fed on trace completion only.
    stages: Mutex<StageStats>,
    /// JSON-lines access log sink (file or stdout), one line per
    /// completed trace.
    access_log: Option<Mutex<Box<dyn io::Write + Send>>>,
    /// `/readyz` gate: false while a `--preload` sweep is still
    /// materializing catalog datasets.
    ready: AtomicBool,
    /// Per-dataset ingest pipelines (WAL + memtable), materialized on
    /// the first write — or on the first read when a WAL file already
    /// exists next to the snapshot (boot-time crash recovery).
    ingest: Mutex<HashMap<usize, Arc<IngestState>>>,
    /// The streaming-ingest ledger shared with `/metrics`.
    ingest_counters: IngestCounters,
    /// WAL durability policy.
    fsync: FsyncPolicy,
    /// Ingest body cap (bytes).
    ingest_max_body: u64,
    /// Memtable backpressure threshold (points).
    memtable_points: usize,
    /// Memtable compaction threshold (points).
    compact_points: usize,
    /// In-flight background compaction threads, joined at shutdown so
    /// a stopped server leaves no half-written snapshot swap behind.
    compactions: Mutex<Vec<JoinHandle<()>>>,
}

/// A running tile server (see [`TileServer::start`]).
pub struct TileServer {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl TileServer {
    /// Validates the configuration, builds the kd-tree, sweeps the
    /// density range for the shared color scale, binds the socket, and
    /// spawns the accept thread plus `config.workers` render workers.
    ///
    /// `points` should already carry their normalized weights (the CLI
    /// applies `scale_weights` before calling this); `kernel` is the
    /// bandwidth-calibrated kernel shared by every tile.
    pub fn start(
        config: ServerConfig,
        points: &PointSet,
        kernel: Kernel,
    ) -> Result<Self, ServeError> {
        validate_config(&config)?;
        let build_started = Instant::now();
        let tree = KdTree::build_default(points);
        let index_ms = build_started.elapsed().as_millis() as u64;
        let entry = finish_entry(
            "default",
            tree,
            kernel,
            render_settings(&config),
            index_ms,
            DatasetSource::Built,
        )
        .map_err(ServeError::Config)?;
        let startup = StartupReport {
            total_ms: config.data_load_ms + index_ms + entry.warm_ms,
            data_load_ms: config.data_load_ms,
            index_ms,
            warm_ms: entry.warm_ms,
            source: "built",
        };
        Self::start_inner(config, Catalog::single(entry), startup, false)
    }

    /// Boots from a store directory instead of raw points: scans the
    /// catalog (`{name}.kdvs` snapshots, `{name}.csv` fallbacks),
    /// binds, and serves `/tiles/{dataset}/{kind}/{z}/{x}/{y}.png`.
    /// Datasets materialize lazily on first touch — the boot path pays
    /// a directory scan, not an index build.
    pub fn start_with_store(config: ServerConfig, store_dir: &Path) -> Result<Self, ServeError> {
        validate_config(&config)?;
        let scan_started = Instant::now();
        let catalog = Catalog::open(
            store_dir,
            config.store_budget_bytes,
            render_settings(&config),
        )
        .map_err(ServeError::Config)?;
        let index_ms = scan_started.elapsed().as_millis() as u64;
        let startup = StartupReport {
            total_ms: config.data_load_ms + index_ms,
            data_load_ms: config.data_load_ms,
            index_ms,
            warm_ms: 0,
            source: "catalog",
        };
        Self::start_inner(config, catalog, startup, true)
    }

    fn start_inner(
        config: ServerConfig,
        catalog: Catalog,
        startup: StartupReport,
        multi: bool,
    ) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;

        // Process-wide SIMD kill switch: `--no-simd` forces every leaf
        // scan (including batched-tile finishing passes) onto the
        // bit-identical scalar path.
        kdv_geom::simd::set_simd_enabled(config.simd);

        // The access log implies tracing: its lines are rendered from
        // completed traces.
        let trace_on = config.trace || config.access_log.is_some();
        let access_log: Option<Mutex<Box<dyn io::Write + Send>>> = match &config.access_log {
            None => None,
            Some(dest) if dest == "-" => Some(Mutex::new(Box::new(io::stdout()))),
            Some(path) => {
                let file = std::fs::File::options()
                    .create(true)
                    .append(true)
                    .open(path)
                    .map_err(|e| {
                        ServeError::Config(format!("cannot open access log {path}: {e}"))
                    })?;
                Some(Mutex::new(Box::new(file)))
            }
        };

        let inner = Arc::new(Inner {
            catalog,
            multi,
            family: BoundFamily::Quadratic,
            eps: config.eps,
            tau: config.tau,
            cm: ColorMap::heat(),
            policy: config.policy,
            batch: config.batch,
            max_z: config.max_z,
            pyramid_max_z: config.pyramid_max_z,
            pyramid: PyramidCounters::default(),
            cache: TileCache::new(config.cache_bytes, config.cache_shards),
            http: HttpCounters::default(),
            metrics: Mutex::new(RenderMetrics::new()),
            frontiers: Mutex::new(HashMap::new()),
            startup,
            shutdown: AtomicBool::new(false),
            allow_shutdown: config.allow_shutdown,
            debug_sleep: config.debug_sleep,
            local_addr,
            started: Instant::now(),
            traces: trace_on
                .then(|| TraceRing::new(config.trace_ring, config.slow_ms.saturating_mul(1_000))),
            stages: Mutex::new(StageStats::new()),
            access_log,
            ready: AtomicBool::new(!config.preload),
            ingest: Mutex::new(HashMap::new()),
            ingest_counters: IngestCounters::default(),
            fsync: config.fsync,
            ingest_max_body: config.ingest_max_body,
            memtable_points: config.memtable_points,
            compact_points: config.compact_points,
            compactions: Mutex::new(Vec::new()),
        });

        if config.preload {
            // Materialize every dataset off the accept path; `/readyz`
            // flips to 200 when the sweep completes. Load failures are
            // already surfaced per-dataset through /metrics and tile
            // 500s, so the sweep itself is best-effort.
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("kdv-serve-preload".to_string())
                .spawn(move || {
                    for idx in 0..inner.catalog.len() {
                        let _ = inner.catalog.get(idx);
                    }
                    inner.ready.store(true, Ordering::SeqCst);
                })
                .map_err(ServeError::Io)?;
        }

        let (tx, rx) = sync_channel::<(TcpStream, Instant)>(config.queue);
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let inner = Arc::clone(&inner);
            let rx = Arc::clone(&rx);
            let handle = std::thread::Builder::new()
                .name(format!("kdv-serve-worker-{i}"))
                .spawn(move || worker_loop(&inner, &rx))
                .map_err(ServeError::Io)?;
            workers.push(handle);
        }

        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("kdv-serve-accept".to_string())
                .spawn(move || accept_loop(&inner, &listener, tx))
                .map_err(ServeError::Io)?
        };

        Ok(Self {
            inner,
            addr: local_addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Where this server's boot time went (also under `startup` in
    /// `/metrics`). The CLI logs it right after binding.
    pub fn startup(&self) -> StartupReport {
        self.inner.startup
    }

    /// Sorted names of the datasets this server fronts.
    pub fn dataset_names(&self) -> Vec<String> {
        self.inner
            .catalog
            .names()
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    /// Blocks until the server shuts down (via [`TileServer::stop`]
    /// from another thread, or a `GET /shutdown` when enabled).
    pub fn join(mut self) {
        self.join_threads();
    }

    /// Initiates shutdown and waits for every thread to exit.
    pub fn stop(mut self) {
        self.request_stop();
        self.join_threads();
    }

    /// Whether shutdown has been requested (a `/shutdown` hit, or
    /// [`TileServer::stop`] racing from another thread). The CLI polls
    /// this so a SIGTERM watcher and the HTTP shutdown path can share
    /// one exit loop.
    pub fn is_shutdown(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    fn request_stop(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept thread's blocking `accept()`.
        let _ = TcpStream::connect(self.addr);
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Compactions finish their snapshot swap before the process is
        // considered stopped (tests copy the store directory right
        // after `stop()` returns).
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = self
                .inner
                .compactions
                .lock()
                .expect("compaction registry poisoned");
            guard.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        // Graceful-drain durability: with the worker pool gone, fsync
        // every live WAL so nothing acknowledged (or even buffered)
        // rides only in the page cache when the process exits.
        let states: Vec<Arc<IngestState>> = {
            let guard = self.inner.ingest.lock().expect("ingest registry poisoned");
            guard.values().cloned().collect()
        };
        for state in states {
            let _ = state.sync_wal();
        }
    }
}

fn validate_config(config: &ServerConfig) -> Result<(), ServeError> {
    if config.tile_size < 8 || config.tile_size > 1024 {
        return Err(ServeError::Config(format!(
            "tile size must be in [8, 1024], got {}",
            config.tile_size
        )));
    }
    if config.workers == 0 {
        return Err(ServeError::Config("need at least one worker".into()));
    }
    if config.queue == 0 {
        return Err(ServeError::Config("queue depth must be at least 1".into()));
    }
    if !(config.eps.is_finite() && config.eps > 0.0) {
        return Err(ServeError::Config(format!(
            "ε must be positive, got {}",
            config.eps
        )));
    }
    if !(config.tau.is_finite() && config.tau > 0.0) {
        return Err(ServeError::Config(format!(
            "τ must be positive, got {}",
            config.tau
        )));
    }
    if config.memtable_points == 0 || config.compact_points == 0 {
        return Err(ServeError::Config(
            "memtable and compaction thresholds must be at least 1 point".into(),
        ));
    }
    if config.compact_points > config.memtable_points {
        return Err(ServeError::Config(format!(
            "compaction threshold ({}) must not exceed the memtable cap ({}) — writes \
             would stall before compaction ever triggers",
            config.compact_points, config.memtable_points
        )));
    }
    Ok(())
}

fn render_settings(config: &ServerConfig) -> RenderSettings {
    RenderSettings {
        tile_size: config.tile_size,
        margin_frac: config.margin_frac,
        eps: config.eps,
    }
}

fn accept_loop(
    inner: &Inner,
    listener: &TcpListener,
    tx: std::sync::mpsc::SyncSender<(TcpStream, Instant)>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
        let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
        // Nagle off: every response is written in one buffer, so
        // delaying the final short segment for an ACK only adds
        // latency — most visibly on the router's proxy path.
        let _ = stream.set_nodelay(true);
        // The accept timestamp rides along so the worker can attribute
        // queue wait to a span whose origin is *here*, not at dequeue.
        match tx.try_send((stream, Instant::now())) {
            Ok(()) => {}
            Err(TrySendError::Full((mut stream, _))) => {
                // Admission control: shed load at the door with a hint
                // instead of queueing unboundedly. Drain the request
                // bytes already in flight first — closing with unread
                // data sends RST, and the client would see a reset
                // instead of the 429.
                inner.http.rejected();
                let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                let mut scratch = [0u8; 1024];
                let _ = io::Read::read(&mut stream, &mut scratch);
                let resp = text_response(429, "Too Many Requests", "tile queue is full")
                    .header("Retry-After", "1");
                let _ = resp.write_to(&mut stream);
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Dropping `tx` here disconnects the channel; workers drain the
    // queue and exit.
}

fn worker_loop(inner: &Arc<Inner>, rx: &Mutex<Receiver<(TcpStream, Instant)>>) {
    loop {
        let stream = {
            let guard = rx.lock().expect("accept queue poisoned");
            guard.recv()
        };
        match stream {
            Ok((stream, accepted)) => handle_connection(inner, stream, accepted),
            Err(_) => break, // accept thread gone and queue drained
        }
    }
}

/// How long a worker waits for the next request on a kept-alive
/// connection before handing itself back to the pool. Short on
/// purpose: an idle persistent connection pins a worker, and the
/// router reconnects transparently when its pooled connection has
/// been idled out.
const KEEPALIVE_IDLE: Duration = Duration::from_secs(2);

fn handle_connection(inner: &Arc<Inner>, mut stream: TcpStream, accepted: Instant) {
    // The head/body read buffer persists across requests on the same
    // connection (carrying any pipelined bytes with it), so a
    // keep-alive proxy path pays one allocation per connection, not
    // one per tile.
    let mut carry = Vec::new();
    let mut accepted = accepted;
    loop {
        if !handle_request(inner, &mut stream, accepted, &mut carry) {
            break;
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Between requests, wait for the next request's first byte
        // under the (short) keep-alive idle timeout — *outside* any
        // trace, so idle time on a persistent connection is never
        // attributed to a request.
        if carry.is_empty() {
            let _ = stream.set_read_timeout(Some(KEEPALIVE_IDLE));
            let mut first = [0u8; 1];
            match stream.peek(&mut first) {
                Ok(n) if n > 0 => {}
                _ => break, // closed, reset, or idled out
            }
            let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
        }
        accepted = Instant::now();
    }
    if inner.shutdown.load(Ordering::SeqCst) {
        // Wake the accept thread so shutdown is prompt.
        let _ = TcpStream::connect(inner.local_addr);
    }
}

/// Serves one request off `stream`; returns whether the connection
/// should be kept open for another.
fn handle_request(
    inner: &Arc<Inner>,
    stream: &mut TcpStream,
    accepted: Instant,
    carry: &mut Vec<u8>,
) -> bool {
    let mut rt = RequestTrace::new(inner, accepted);
    rt.tb.span_between("queue", accepted, Instant::now());
    let parse = rt.tb.begin("parse");
    let request = match read_request_from(stream, inner.ingest_max_body, carry) {
        Ok(Ok(request)) => request,
        Ok(Err(reject)) => {
            rt.tb.end(parse);
            let response = match reject {
                RequestError::Bad(message) => {
                    inner.http.bad_request();
                    text_response(400, "Bad Request", &message)
                }
                RequestError::TooLarge { declared, cap } => {
                    // Backpressure by refusal: the body was never read,
                    // so the worker is free immediately. Drain what the
                    // client already pipelined (bounded) so closing
                    // with unread data doesn't RST away the response.
                    // Counted as a shed/rejection (like the 429 paths),
                    // not a 400: /metrics should separate client bugs
                    // from backpressure.
                    inner.ingest_counters.reject_too_large();
                    inner.http.rejected();
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                    let mut scratch = [0u8; 4096];
                    for _ in 0..16 {
                        match io::Read::read(&mut *stream, &mut scratch) {
                            Ok(0) | Err(_) => break,
                            Ok(_) => {}
                        }
                    }
                    text_response(
                        413,
                        "Payload Too Large",
                        &format!("declared body of {declared} bytes exceeds the {cap}-byte cap"),
                    )
                    .header("Retry-After", "1")
                }
            };
            let response = stamp_trace(&rt, response);
            let _ = response.write_to(stream);
            let _ = stream.shutdown(std::net::Shutdown::Write);
            finish_trace(inner, rt, "", "", &response);
            return false;
        }
        Err(_) => return false, // transport failure: nothing to answer
    };
    rt.tb.end(parse);
    // Adopt a forwarded trace ID (the cluster router sends one) so the
    // shard's trace carries the same ID the client saw end to end.
    if let Some(forwarded) = request.trace_id.as_deref().and_then(TraceId::from_hex) {
        rt.tb.set_id(forwarded);
    }
    inner.http.request();
    // Persistence is opt-in (explicit `Connection: keep-alive`), and a
    // draining server closes regardless so shutdown never waits out an
    // idle connection.
    let keep = request.keep_alive && !inner.shutdown.load(Ordering::SeqCst);
    let response = route(inner, &request, &mut rt).keep_alive(keep);
    let response = stamp_trace(&rt, response);
    let write = rt.tb.begin("write");
    let wrote = response.write_to(stream).is_ok();
    rt.tb.end_with(
        write,
        vec![("bytes", TagValue::U64(response.body_len() as u64))],
    );
    let keep = keep && wrote;
    if !keep {
        // Half-close before sealing the trace: the client's
        // read-to-EOF completes without waiting on ring and histogram
        // mutexes, so trace finalization is off the measured path.
        let _ = stream.shutdown(std::net::Shutdown::Write);
    }
    if wrote {
        inner.http.sent(response.body_len() as u64);
    }
    finish_trace(inner, rt, &request.method, &request.path, &response);
    keep
}

/// Echoes the trace ID on the outgoing response (every response, so a
/// client can quote the ID when reporting a slow or failed tile).
fn stamp_trace(rt: &RequestTrace, response: Response) -> Response {
    match rt.tb.id() {
        Some(id) => response.header("X-Kdv-Trace-Id", id.to_hex()),
        None => response,
    }
}

/// Seals the request's trace: pushes it into the retention rings,
/// folds its spans into the per-stage histograms, and emits the
/// access-log line. All of it is skipped when tracing is off.
fn finish_trace(inner: &Inner, rt: RequestTrace, method: &str, path: &str, response: &Response) {
    let Some(ring) = &inner.traces else {
        return;
    };
    let RequestTrace {
        tb,
        cache,
        degraded,
    } = rt;
    let Some(trace) = tb.finish(TraceMeta {
        method: method.to_string(),
        path: path.to_string(),
        status: response.status(),
        bytes: response.body_len() as u64,
        cache,
        degraded,
    }) else {
        return;
    };
    inner
        .stages
        .lock()
        .expect("stage histograms poisoned")
        .record(&trace);
    if let Some(log) = &inner.access_log {
        let line = access_log_line(&trace);
        let mut sink = log.lock().expect("access log poisoned");
        let _ = writeln!(sink, "{line}");
        let _ = sink.flush();
    }
    ring.push(trace);
}

/// One JSON access-log line for a completed trace: request line,
/// outcome, total and per-stage latency, and the trace ID.
fn access_log_line(trace: &Trace) -> String {
    let ts_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let stage_fields = trace
        .spans
        .iter()
        .map(|s| (s.name, json::num_u(s.dur_us)))
        .collect();
    Value::obj(vec![
        ("ts_ms", json::num_u(ts_ms)),
        ("trace_id", Value::Str(trace.id.to_hex())),
        ("method", Value::Str(trace.meta.method.clone())),
        ("path", Value::Str(trace.meta.path.clone())),
        ("status", json::num_u(trace.meta.status as u64)),
        ("bytes", json::num_u(trace.meta.bytes)),
        (
            "cache",
            match trace.meta.cache {
                Some(c) => Value::Str(c.to_string()),
                None => Value::Null,
            },
        ),
        ("degraded", Value::Bool(trace.meta.degraded)),
        ("total_us", json::num_u(trace.total_us)),
        ("stages_us", Value::obj(stage_fields)),
    ])
    .render_compact()
}

fn route(inner: &Arc<Inner>, request: &Request, rt: &mut RequestTrace) -> Response {
    let path = request.path.as_str();
    if let Some(rest) = path.strip_prefix("/datasets/") {
        return datasets_response(inner, request, rest, rt);
    }
    if request.method != "GET" {
        inner.http.bad_request();
        return text_response(400, "Bad Request", "only GET is supported");
    }
    if let Some(rest) = path.strip_prefix("/debug/sleep/") {
        return debug_sleep(inner, rest);
    }
    match path {
        "/metrics" => {
            inner.http.ok(false);
            if request.query.as_deref() == Some("format=prometheus") {
                let body = metrics_prometheus(inner);
                Response::new(200, "OK").body(
                    "text/plain; version=0.0.4; charset=utf-8",
                    body.into_bytes(),
                )
            } else {
                let body = metrics_json(inner).render();
                Response::new(200, "OK").body("application/json", body.into_bytes())
            }
        }
        "/debug/traces" => debug_traces(inner, false),
        "/debug/slow" => debug_traces(inner, true),
        "/healthz" => {
            inner.http.ok(false);
            text_response(200, "OK", "ok")
        }
        "/readyz" => {
            if inner.ready.load(Ordering::SeqCst) {
                inner.http.ok(false);
                text_response(200, "OK", "ready")
            } else {
                // Not-ready is transient by construction; tell load
                // balancers when to look again.
                text_response(503, "Service Unavailable", "preloading datasets")
                    .header("Retry-After", "1")
            }
        }
        "/shutdown" => {
            if inner.allow_shutdown {
                inner.shutdown.store(true, Ordering::SeqCst);
                inner.http.ok(false);
                text_response(200, "OK", "shutting down")
            } else {
                inner.http.not_found();
                text_response(404, "Not Found", "shutdown is not enabled")
            }
        }
        p if p.starts_with("/tiles/") => tile_response(inner, p, rt),
        _ => {
            inner.http.not_found();
            text_response(404, "Not Found", "no such resource")
        }
    }
}

/// `/debug/traces` (recent) and `/debug/slow` (threshold-crossers):
/// the retained rings as JSON, newest first.
fn debug_traces(inner: &Inner, slow_only: bool) -> Response {
    let Some(ring) = &inner.traces else {
        inner.http.not_found();
        return text_response(404, "Not Found", "tracing is disabled (--no-trace)");
    };
    let traces = if slow_only {
        ring.slow()
    } else {
        ring.recent()
    };
    let body = Value::obj(vec![
        (
            "slow_threshold_ms",
            json::num_u(ring.slow_threshold_us() / 1_000),
        ),
        ("completed", json::num_u(ring.completed())),
        ("slow_seen", json::num_u(ring.slow_seen())),
        (
            "traces",
            Value::Arr(traces.iter().map(|t| t.to_json()).collect()),
        ),
    ])
    .render();
    inner.http.ok(false);
    Response::new(200, "OK").body("application/json", body.into_bytes())
}

fn debug_sleep(inner: &Inner, ms: &str) -> Response {
    if !inner.debug_sleep {
        inner.http.not_found();
        return text_response(404, "Not Found", "debug endpoints are not enabled");
    }
    match ms.parse::<u64>() {
        Ok(ms) if ms <= MAX_DEBUG_SLEEP_MS => {
            std::thread::sleep(Duration::from_millis(ms));
            inner.http.ok(false);
            text_response(200, "OK", "slept")
        }
        _ => {
            inner.http.bad_request();
            text_response(400, "Bad Request", "sleep duration must be a small integer")
        }
    }
}

/// The cache-key byte for a level pick (`FULL_LEVEL` = full index).
fn level_byte(level: Option<usize>) -> u8 {
    level.map_or(FULL_LEVEL, |l| l.min(FULL_LEVEL as usize - 1) as u8)
}

/// The `X-Kdv-Level` header value: a level index, or `full`.
fn level_label(level: Option<usize>) -> String {
    match level {
        Some(l) => l.to_string(),
        None => "full".to_string(),
    }
}

fn tile_response(inner: &Arc<Inner>, path: &str, rt: &mut RequestTrace) -> Response {
    let (dataset, addr) = match parse_tile_path(path, inner.max_z, inner.multi) {
        Ok(parsed) => parsed,
        Err(e) => {
            inner.http.bad_request();
            return text_response(400, "Bad Request", &e.to_string());
        }
    };
    let idx = match &dataset {
        Some(name) => match inner.catalog.lookup(name) {
            Some(idx) => idx,
            None => {
                inner.http.not_found();
                return text_response(
                    404,
                    "Not Found",
                    &format!("no dataset {name:?} in this catalog"),
                );
            }
        },
        None => 0,
    };
    // Materialize the dataset (instant when already resident). A load
    // failure — corrupt snapshot, unreadable file — is a 500 with the
    // store's structured message, and is *not* cached: replacing the
    // file heals the dataset on the next request.
    let catalog_span = rt.tb.begin("catalog");
    let entry = match inner.catalog.get(idx) {
        Ok(entry) => entry,
        Err(message) => {
            rt.tb.end(catalog_span);
            inner.http.internal_error();
            return text_response(500, "Internal Server Error", &message);
        }
    };
    rt.tb.end(catalog_span);
    // Streaming ingest: pick up this dataset's WAL-backed memtable if
    // one exists on disk. GETs never *create* a WAL — read-only
    // catalogs stay read-only.
    let state = match ingest_state(inner, idx, &entry, false) {
        Ok(state) => state,
        Err(message) => {
            inner.http.internal_error();
            return text_response(500, "Internal Server Error", &message);
        }
    };
    // The pyramid level is part of the tile's identity: it is decided
    // *before* the cache lookup from the entry state alone, so hits
    // and misses agree on which bytes a key names.
    let mut level = pyramid::pick_level(&entry.pyramid, addr.z, inner.pyramid_max_z, inner.eps);
    let mut key = TileKey {
        dataset: idx as u32,
        addr,
        param_bits: match addr.kind {
            TileKind::Eps => inner.eps.to_bits(),
            TileKind::Tau => inner.tau.to_bits(),
        },
        gamma_bits: entry.kernel.gamma.to_bits(),
        level: level_byte(level),
    };
    let cache_span = rt.tb.begin("cache");
    let cached = inner.cache.get(&key);
    rt.tb.end_with(
        cache_span,
        vec![(
            "bytes",
            TagValue::U64(cached.as_ref().map_or(0, |d| d.len() as u64)),
        )],
    );
    if let Some(data) = cached {
        inner.http.ok(false);
        rt.cache = Some("hit");
        return Response::new(200, "OK")
            .header("X-Kdv-Cache", "hit")
            .header("X-Kdv-Level", level_label(level))
            .body("image/png", data.as_ref().clone());
    }
    rt.cache = Some("miss");
    // Render against a consistent (base, memtable) pair. A compaction
    // that lands mid-render swaps the base under us and rebuilds the
    // memtable — detected by the generation counter bumping, in which
    // case the torn tile is discarded and re-rendered against the new
    // pair. Bounded retries: compactions are rare next to one render.
    let mut entry = entry;
    let mut attempts = 0;
    loop {
        let generation = state.as_ref().map(|s| s.generation());
        let delta = state.as_ref().map(|s| s.delta());
        let rendered = render_tile(
            inner,
            &entry,
            idx as u32,
            addr,
            rt,
            delta.as_ref().filter(|d| !d.is_empty()),
            level,
        );
        let (bytes, degraded_pixels) = match rendered {
            Ok(out) => out,
            Err(e) => {
                inner.http.internal_error();
                return text_response(500, "Internal Server Error", &e.to_string());
            }
        };
        if let (Some(s), Some(g)) = (&state, generation) {
            if s.generation() != g && attempts < 3 {
                attempts += 1;
                entry = match inner.catalog.get(idx) {
                    Ok(entry) => entry,
                    Err(message) => {
                        inner.http.internal_error();
                        return text_response(500, "Internal Server Error", &message);
                    }
                };
                // Compaction re-certifies the ladder; the new base may
                // route this tile to a different level, so re-pick and
                // re-key before the retry render.
                level = pyramid::pick_level(&entry.pyramid, addr.z, inner.pyramid_max_z, inner.eps);
                key.level = level_byte(level);
                continue;
            }
        }
        // A write landing mid-render may have already invalidated this
        // tile's cache line before we insert: only cache tiles whose
        // delta snapshot is still current (and whose base was stable).
        let fresh = match (&state, &delta) {
            (Some(s), Some(d)) => s.epoch() == d.epoch && Some(s.generation()) == generation,
            _ => true,
        };
        let data = Arc::new(bytes);
        if degraded_pixels == 0 && fresh {
            // Degraded tiles are *served* but never cached: they
            // reflect transient overload, not the density field.
            inner.cache.insert(key, Arc::clone(&data));
            // A write can commit (bumping the epoch) and run its
            // invalidation sweep entirely between the freshness check
            // above and the insert — the sweep misses an entry that
            // is not there yet. Re-check after the insert: if the
            // world moved on, pull the tile ourselves. Writers bump
            // before sweeping, so one side always sees the other.
            let still_fresh = match (&state, &delta) {
                (Some(s), Some(d)) => s.epoch() == d.epoch && Some(s.generation()) == generation,
                _ => true,
            };
            if !still_fresh {
                inner.cache.remove(&key);
            }
        }
        inner.http.ok(degraded_pixels > 0);
        rt.degraded = degraded_pixels > 0;
        let mut response = Response::new(200, "OK")
            .header("X-Kdv-Cache", "miss")
            .header("X-Kdv-Level", level_label(level));
        if degraded_pixels > 0 {
            response = response.header("X-Kdv-Degraded", degraded_pixels.to_string());
        }
        return response.body("image/png", data.as_ref().clone());
    }
}

/// Dispatches `/datasets/{name}/points` (POST: durable streaming
/// ingest) and `/datasets/{name}/stats` (GET: ingest bookkeeping).
fn datasets_response(
    inner: &Arc<Inner>,
    request: &Request,
    rest: &str,
    rt: &mut RequestTrace,
) -> Response {
    let Some((name, action)) = rest.split_once('/') else {
        inner.http.not_found();
        return text_response(404, "Not Found", "expected /datasets/{name}/{points|stats}");
    };
    if !valid_dataset_name(name) {
        inner.http.bad_request();
        return text_response(400, "Bad Request", "invalid dataset name");
    }
    let Some(idx) = inner.catalog.lookup(name) else {
        inner.http.not_found();
        return text_response(
            404,
            "Not Found",
            &format!("no dataset {name:?} in this catalog"),
        );
    };
    match (request.method.as_str(), action) {
        ("POST", "points") => ingest_post(inner, request, idx, rt),
        ("GET", "stats") => dataset_stats(inner, idx),
        (_, "points") | (_, "stats") => {
            inner.http.bad_request();
            text_response(400, "Bad Request", "wrong method for this resource")
        }
        _ => {
            inner.http.not_found();
            text_response(404, "Not Found", "expected /datasets/{name}/{points|stats}")
        }
    }
}

/// A parsed `/points` body: weighted appends + tombstone coordinates.
type IngestBatch = (Vec<[f64; 3]>, Vec<[f64; 2]>);

/// Parses a `/points` body: `{"append": [[x, y, w], ...],
/// "remove": [[x, y], ...]}`. At least one list must be non-empty,
/// every number finite, and every append weight strictly positive —
/// a negative weight would panic `PointSet::from_vecs` at compaction
/// time, long after the write was durably acknowledged.
fn parse_ingest_body(body: &[u8]) -> Result<IngestBatch, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_string())?;
    let value = json::parse(text)?;
    let floats = |v: &Value, arity: usize, what: &str| -> Result<Vec<f64>, String> {
        let items = v
            .as_arr()
            .filter(|items| items.len() == arity)
            .ok_or_else(|| format!("each {what:?} entry must be an array of {arity} numbers"))?;
        items
            .iter()
            .map(|x| {
                x.as_f64()
                    .filter(|f| f.is_finite())
                    .ok_or_else(|| format!("{what:?} entries must hold finite numbers"))
            })
            .collect()
    };
    let list = |key: &str| -> Result<Vec<Vec<f64>>, String> {
        match value.get(key) {
            None => Ok(Vec::new()),
            Some(v) => v
                .as_arr()
                .ok_or_else(|| format!("{key:?} must be an array"))?
                .iter()
                .map(|item| floats(item, if key == "append" { 3 } else { 2 }, key))
                .collect(),
        }
    };
    let appends: Vec<[f64; 3]> = list("append")?
        .into_iter()
        .map(|f| [f[0], f[1], f[2]])
        .collect();
    if appends.iter().any(|p| p[2] <= 0.0) {
        return Err("\"append\" weights must be > 0".to_string());
    }
    let removes: Vec<[f64; 2]> = list("remove")?.into_iter().map(|f| [f[0], f[1]]).collect();
    if appends.is_empty() && removes.is_empty() {
        return Err("body must carry a non-empty \"append\" or \"remove\" list".to_string());
    }
    Ok((appends, removes))
}

/// The lazily materialized [`IngestState`] for slot `idx`. With
/// `create` false (read paths) a state only materializes when a WAL
/// file already exists on disk; POSTs pass true and create one.
/// `Ok(None)` means the dataset has no ingest state and should not get
/// one here (directory-backed slots stay read-only).
fn ingest_state(
    inner: &Inner,
    idx: usize,
    entry: &Arc<DatasetEntry>,
    create: bool,
) -> Result<Option<Arc<IngestState>>, String> {
    {
        let registry = inner.ingest.lock().expect("ingest registry poisoned");
        if let Some(state) = registry.get(&idx) {
            return Ok(Some(Arc::clone(state)));
        }
    }
    let Some(snapshot_path) = inner.catalog.snapshot_path(idx) else {
        return Ok(None);
    };
    let wal_path = snapshot_path.with_extension(kdv_store::WAL_EXTENSION);
    if !create && !wal_path.exists() {
        return Ok(None);
    }
    let mut registry = inner.ingest.lock().expect("ingest registry poisoned");
    // Double-checked: another worker may have opened the WAL while we
    // probed the filesystem.
    if let Some(state) = registry.get(&idx) {
        return Ok(Some(Arc::clone(state)));
    }
    let state = Arc::new(IngestState::open(
        wal_path,
        entry,
        inner.fsync,
        &inner.ingest_counters,
    )?);
    registry.insert(idx, Arc::clone(&state));
    Ok(Some(state))
}

/// `POST /datasets/{name}/points`: appends/tombstones points durably.
/// The 200 is written only after the WAL record reached the
/// configured durability point — an acked point survives any crash.
fn ingest_post(
    inner: &Arc<Inner>,
    request: &Request,
    idx: usize,
    rt: &mut RequestTrace,
) -> Response {
    let catalog_span = rt.tb.begin("catalog");
    let entry = match inner.catalog.get(idx) {
        Ok(entry) => entry,
        Err(message) => {
            rt.tb.end(catalog_span);
            inner.http.internal_error();
            return text_response(500, "Internal Server Error", &message);
        }
    };
    rt.tb.end(catalog_span);
    let (appends, removes) = match parse_ingest_body(&request.body) {
        Ok(parsed) => parsed,
        Err(message) => {
            inner.http.bad_request();
            return text_response(400, "Bad Request", &message);
        }
    };
    let state = match ingest_state(inner, idx, &entry, true) {
        Ok(Some(state)) => state,
        Ok(None) => {
            inner.http.bad_request();
            return text_response(
                400,
                "Bad Request",
                "streaming ingest needs a snapshot-backed dataset (.kdvs store)",
            );
        }
        Err(message) => {
            inner.http.internal_error();
            return text_response(500, "Internal Server Error", &message);
        }
    };
    // A batch that would tombstone every remaining point is refused
    // up front: an empty dataset can never compact, so accepting it
    // would wedge the dataset behind permanent 429s. (Checked again
    // race-free inside commit; this early check keeps the common case
    // all-or-nothing.)
    if state.would_empty(&appends, &removes) {
        inner.http.bad_request();
        return text_response(
            400,
            "Bad Request",
            "batch would tombstone every remaining point; a dataset cannot be emptied",
        );
    }
    let incoming = appends.len() + removes.len();
    if state.point_count() + incoming > inner.memtable_points {
        // The memtable is priced into every tile pixel; past the cap,
        // writes wait for compaction rather than degrade reads.
        inner.ingest_counters.reject_backpressure();
        inner.http.rejected();
        return text_response(
            429,
            "Too Many Requests",
            "memtable is full; retry after compaction",
        )
        .header("Retry-After", "1");
    }
    let ingest_span = rt.tb.begin("ingest");
    let mut committed = None;
    for op in [
        (!appends.is_empty()).then(|| WalOp::Append(appends.clone())),
        (!removes.is_empty()).then(|| WalOp::Tombstone(removes.clone())),
    ]
    .into_iter()
    .flatten()
    {
        let points = match &op {
            WalOp::Append(p) => p.len() as u64,
            WalOp::Tombstone(c) => c.len() as u64,
        };
        let is_append = matches!(op, WalOp::Append(_));
        let started = Instant::now();
        match state.commit(op, &inner.ingest_counters) {
            Ok(done) => {
                let ns = started.elapsed().as_nanos() as u64;
                if is_append {
                    inner.ingest_counters.append(points, ns);
                } else {
                    inner.ingest_counters.tombstone(points, ns);
                }
                committed = Some(done);
            }
            Err(CommitError::WouldEmpty) => {
                // A concurrent writer emptied the rest between our
                // admission check and this commit. Any appends in this
                // batch were already applied (and stay durable).
                rt.tb.end(ingest_span);
                inner.http.bad_request();
                return text_response(
                    400,
                    "Bad Request",
                    "remove rejected: it would tombstone every remaining point",
                );
            }
            Err(CommitError::Store(e)) => {
                rt.tb.end(ingest_span);
                inner.http.internal_error();
                return text_response(
                    500,
                    "Internal Server Error",
                    &format!("durable write failed: {e}"),
                );
            }
        }
    }
    let committed = committed.expect("parse_ingest_body rejects empty bodies");
    rt.tb.end_with(
        ingest_span,
        vec![
            ("points", TagValue::U64(incoming as u64)),
            ("seq", TagValue::U64(committed.seq)),
        ],
    );
    // Drop exactly the cached tiles the write can alter: anything the
    // dilated bounding rect of the touched coordinates reaches.
    let mut invalidated = 0u64;
    for op in [
        (!appends.is_empty()).then_some(WalOp::Append(appends)),
        (!removes.is_empty()).then_some(WalOp::Tombstone(removes)),
    ]
    .into_iter()
    .flatten()
    {
        invalidated += invalidate_for_write(inner, idx, &entry, &op);
    }
    maybe_spawn_compaction(inner, idx, &state);
    inner.http.ok(false);
    let body = Value::obj(vec![
        ("acked", Value::Bool(true)),
        ("seq", json::num_u(committed.seq)),
        ("wal_len", json::num_u(committed.wal_len)),
        (
            "fsync",
            Value::Str(
                match inner.fsync {
                    FsyncPolicy::Every => "every",
                    FsyncPolicy::Batch => "batch",
                }
                .to_string(),
            ),
        ),
        ("invalidated_tiles", json::num_u(invalidated)),
    ])
    .render();
    Response::new(200, "OK").body("application/json", body.into_bytes())
}

/// Drops cached tiles a write can alter. With a finite-support (or
/// effectively finite) kernel only tiles whose window intersects the
/// write's dilated bounding rect go; a kernel with no usable cutoff
/// clears the whole dataset.
fn invalidate_for_write(inner: &Inner, idx: usize, entry: &DatasetEntry, op: &WalOp) -> u64 {
    let dataset = idx as u32;
    let dropped = match (ingest::support_radius(entry.kernel), ingest::op_rect(op)) {
        (Some(r), Some(rect)) => {
            let rect = ingest::dilate_rect(rect, r);
            inner.cache.invalidate_where(|k| {
                k.dataset == dataset
                    && ingest::tile_intersects(&entry.base, k.addr.z, k.addr.x, k.addr.y, &rect)
            })
        }
        _ => inner.cache.invalidate_where(|k| k.dataset == dataset),
    };
    inner.ingest_counters.invalidated(dropped);
    dropped
}

/// Kicks off a background compaction when the memtable crosses the
/// configured threshold; at most one per dataset at a time.
fn maybe_spawn_compaction(inner: &Arc<Inner>, idx: usize, state: &Arc<IngestState>) {
    if state.point_count() < inner.compact_points {
        return;
    }
    if state.compacting.swap(true, Ordering::SeqCst) {
        return;
    }
    let worker_inner = Arc::clone(inner);
    let worker_state = Arc::clone(state);
    let spawned = std::thread::Builder::new()
        .name("kdv-serve-compact".to_string())
        .spawn(move || {
            // Reset via a drop guard: if compaction panics, unwinding
            // must still clear the flag — a stuck `compacting` would
            // silently disable compaction for this dataset forever
            // (and, once the memtable filled, reject every write).
            struct ClearCompacting(Arc<IngestState>);
            impl Drop for ClearCompacting {
                fn drop(&mut self) {
                    self.0.compacting.store(false, Ordering::SeqCst);
                }
            }
            let _clear = ClearCompacting(Arc::clone(&worker_state));
            run_compaction(&worker_inner, idx, &worker_state);
        });
    match spawned {
        Ok(handle) => {
            let mut handles = inner
                .compactions
                .lock()
                .expect("compaction registry poisoned");
            handles.retain(|h| !h.is_finished());
            handles.push(handle);
        }
        Err(_) => state.compacting.store(false, Ordering::SeqCst),
    }
}

/// One compaction run: fold the memtable into a fresh snapshot, swap
/// it into the catalog, and drop every cached artifact derived from
/// the old base. Failure leaves the WAL intact — durability is never
/// traded for compaction progress.
fn run_compaction(inner: &Inner, idx: usize, state: &IngestState) {
    match ingest::compact(state, &inner.catalog, idx, &inner.ingest_counters) {
        Ok(None) => {}
        Ok(Some(_)) => {
            let dataset = idx as u32;
            // The base changed wholesale: every cached tile and every
            // stored τ frontier for this dataset describes the old
            // tree's summation order and node ids.
            let dropped = inner.cache.invalidate_where(|k| k.dataset == dataset);
            inner.ingest_counters.invalidated(dropped);
            inner
                .frontiers
                .lock()
                .expect("frontier map poisoned")
                .retain(|k, _| k.0 != dataset);
        }
        Err(message) => {
            inner.ingest_counters.compaction_failure();
            eprintln!("kdv-serve: compaction failed: {message}");
        }
    }
}

/// `GET /datasets/{name}/stats`: point counts and, when streaming
/// ingest is live for this dataset, the WAL/memtable watermarks the
/// crash harness verifies recovery against.
fn dataset_stats(inner: &Arc<Inner>, idx: usize) -> Response {
    let entry = match inner.catalog.get(idx) {
        Ok(entry) => entry,
        Err(message) => {
            inner.http.internal_error();
            return text_response(500, "Internal Server Error", &message);
        }
    };
    let state = match ingest_state(inner, idx, &entry, false) {
        Ok(state) => state,
        Err(message) => {
            inner.http.internal_error();
            return text_response(500, "Internal Server Error", &message);
        }
    };
    let base_points = entry.tree.points().len() as u64;
    let (points_live, ingest) = match &state {
        Some(state) => {
            let s = state.status();
            let live = (base_points + s.appends as u64).saturating_sub(s.removed as u64);
            let obj = Value::obj(vec![
                ("enabled", Value::Bool(true)),
                (
                    "fsync",
                    Value::Str(
                        match inner.fsync {
                            FsyncPolicy::Every => "every",
                            FsyncPolicy::Batch => "batch",
                        }
                        .to_string(),
                    ),
                ),
                ("last_seq", json::num_u(s.last_seq)),
                ("durable_seq", json::num_u(s.durable_seq)),
                ("wal_len", json::num_u(s.wal_len)),
                ("ops", json::num_u(s.ops as u64)),
                ("appends", json::num_u(s.appends as u64)),
                ("removed", json::num_u(s.removed as u64)),
                ("epoch", json::num_u(s.epoch)),
                (
                    "compacting",
                    Value::Bool(state.compacting.load(Ordering::SeqCst)),
                ),
            ]);
            (live, obj)
        }
        None => (
            base_points,
            Value::obj(vec![("enabled", Value::Bool(false))]),
        ),
    };
    inner.http.ok(false);
    let body = Value::obj(vec![
        ("name", Value::Str(entry.name.clone())),
        ("base_points", json::num_u(base_points)),
        ("applied_seq", json::num_u(entry.applied_seq)),
        ("points_live", json::num_u(points_live)),
        ("ingest", ingest),
    ])
    .render();
    Response::new(200, "OK").body("application/json", body.into_bytes())
}

/// Renders one tile under a fresh budget, merging its telemetry into
/// the server-wide aggregate. Returns the encoded PNG and the number
/// of budget-degraded pixels.
///
/// When the request is traced, the refinement runs with a
/// [`DepthProfile`] teed into the engine's probe, so the `render` span
/// carries the work attribution (heap pops, bound evaluations, point
/// evaluations, resyncs, and pops-by-depth); the untraced path keeps
/// the plain `NoProbe`-monomorphized renderer.
#[allow(clippy::too_many_arguments)]
fn render_tile(
    inner: &Inner,
    entry: &DatasetEntry,
    dataset: u32,
    addr: TileAddr,
    rt: &mut RequestTrace,
    delta: Option<&DeltaView>,
    level: Option<usize>,
) -> Result<(Vec<u8>, u64), KdvError> {
    let raster = pyramid_raster(&entry.base, addr.z, addr.x, addr.y)?;
    let mut metrics = RenderMetrics::new();
    let mut depth = DepthProfile::new();
    let traced = rt.tb.is_enabled();
    let render_span = rt.tb.begin("render");
    let picked = level.and_then(|l| entry.pyramid.levels().get(l).map(|lv| (l, lv)));
    match picked {
        Some((l, _)) => inner.pyramid.level_render(l),
        None => inner.pyramid.full_render(),
    }
    let tile = if let Some((_, lv)) = picked {
        // Pyramid path: the level's certificate plus an absolute
        // refinement budget replace the relative per-pixel contract;
        // memtable deltas are exact so both tile kinds merge them
        // without touching the certificate (DESIGN.md §14).
        let w = entry.tree.points().total_weight();
        let mut budget = inner.policy.issue();
        match addr.kind {
            TileKind::Eps => {
                let abs_tol = (inner.eps - lv.eps_s) * w;
                let mut ev = RefineEvaluator::new(&lv.tree, entry.kernel, inner.family);
                let (grid, degraded_pixels) = pyramid::render_eps_pyramid(
                    &mut ev,
                    &raster,
                    abs_tol,
                    &mut budget,
                    delta,
                    entry.kernel,
                )?;
                TileImage {
                    image: inner
                        .cm
                        .render_scaled(&grid, entry.scale.0, entry.scale.1, true),
                    degraded_pixels,
                }
            }
            TileKind::Tau => {
                let mut level_ev = RefineEvaluator::new(&lv.tree, entry.kernel, inner.family);
                let mut full_ev = RefineEvaluator::new(&entry.tree, entry.kernel, inner.family);
                let out = pyramid::render_tau_pyramid(
                    &mut level_ev,
                    &mut full_ev,
                    &raster,
                    inner.tau,
                    lv.eps_s * w,
                    &mut budget,
                    delta,
                    entry.kernel,
                )?;
                inner.pyramid.tau_exact_fallback(out.fallback_pixels);
                TileImage {
                    image: render_binary(&out.mask),
                    degraded_pixels: out.undecided,
                }
            }
        }
    } else {
        match (addr.kind, delta) {
            // Memtable non-empty: the exact per-pixel delta path. τ box
            // certification and frontier reuse are base-only machinery, so
            // they are bypassed here (and never polluted with merged
            // state — frontiers survive writes untouched).
            (TileKind::Eps, Some(delta)) => {
                let mut budget = inner.policy.issue();
                let mut ev = RefineEvaluator::new(&entry.tree, entry.kernel, inner.family);
                let (grid, degraded_pixels) = ingest::render_eps_delta(
                    &mut ev,
                    &raster,
                    inner.eps,
                    &mut budget,
                    delta,
                    entry.kernel,
                )?;
                TileImage {
                    image: inner
                        .cm
                        .render_scaled(&grid, entry.scale.0, entry.scale.1, true),
                    degraded_pixels,
                }
            }
            (TileKind::Tau, Some(delta)) => {
                let mut budget = inner.policy.issue();
                let mut ev = RefineEvaluator::new(&entry.tree, entry.kernel, inner.family);
                let (mask, degraded_pixels) = ingest::render_tau_delta(
                    &mut ev,
                    &raster,
                    inner.tau,
                    &mut budget,
                    delta,
                    entry.kernel,
                )?;
                TileImage {
                    image: render_binary(&mask),
                    degraded_pixels,
                }
            }
            (TileKind::Eps, None) => {
                let mut budget = inner.policy.issue();
                if inner.batch {
                    // Cold-render hot path: one shared node frontier
                    // bounds the whole pixel block, so per-pixel
                    // refinement starts deep in the tree instead of at
                    // the root. Same ε contract, same budget units.
                    let mut tev = TileEvaluator::new(&entry.tree, entry.kernel, inner.family);
                    if traced {
                        render_tile_eps_batched_probed(
                            &mut tev,
                            &raster,
                            inner.eps,
                            &mut budget,
                            &inner.cm,
                            entry.scale,
                            &mut metrics,
                            &mut depth,
                        )?
                    } else {
                        render_tile_eps_batched(
                            &mut tev,
                            &raster,
                            inner.eps,
                            &mut budget,
                            &inner.cm,
                            entry.scale,
                            &mut metrics,
                        )?
                    }
                } else {
                    let mut ev = RefineEvaluator::new(&entry.tree, entry.kernel, inner.family);
                    if traced {
                        render_tile_eps_probed(
                            &mut ev,
                            &raster,
                            inner.eps,
                            &mut budget,
                            &inner.cm,
                            entry.scale,
                            &mut metrics,
                            &mut depth,
                        )?
                    } else {
                        render_tile_eps(
                            &mut ev,
                            &raster,
                            inner.eps,
                            &mut budget,
                            &inner.cm,
                            entry.scale,
                            &mut metrics,
                        )?
                    }
                }
            }
            (TileKind::Tau, None) => render_tau_tile(
                inner,
                entry,
                dataset,
                addr,
                &raster,
                &mut metrics,
                traced,
                &mut depth,
            )?,
        }
    };
    rt.tb.end_with(
        render_span,
        vec![
            ("level", TagValue::Str(level_label(level))),
            ("heap_pops", TagValue::U64(metrics.events.heap_pops)),
            ("node_bounds", TagValue::U64(metrics.events.node_bounds)),
            ("point_evals", TagValue::U64(metrics.events.point_evals)),
            ("resyncs", TagValue::U64(metrics.events.resyncs)),
            ("frontier_reuse", TagValue::U64(metrics.frontier_reuse)),
            ("simd_lanes", TagValue::U64(metrics.simd_lanes as u64)),
            ("degraded_pixels", TagValue::U64(tile.degraded_pixels)),
            ("depth_pops", TagValue::Pairs(depth.nonzero())),
        ],
    );
    inner
        .metrics
        .lock()
        .expect("metrics aggregate poisoned")
        .merge(&metrics);
    let encode_span = rt.tb.begin("encode");
    let bytes = png::encode(&tile.image);
    rt.tb.end_with(
        encode_span,
        vec![("bytes", TagValue::U64(bytes.len() as u64))],
    );
    Ok((bytes, tile.degraded_pixels))
}

/// τ tiles go through box certification first: if the whole tile's
/// bound bracket clears τ the tile is painted wholesale without
/// touching the per-pixel engine. Either way, the refined frontier is
/// inherited from the parent tile and (when undecided) recorded for
/// the children — the same reuse that makes the hierarchical τ
/// renderer cheap, applied across pyramid levels.
#[allow(clippy::too_many_arguments)]
fn render_tau_tile(
    inner: &Inner,
    entry: &DatasetEntry,
    dataset: u32,
    addr: TileAddr,
    raster: &RasterSpec,
    metrics: &mut RenderMetrics,
    traced: bool,
    depth: &mut DepthProfile,
) -> Result<TileImage, KdvError> {
    let a = raster.pixel_center(0, 0);
    let b = raster.pixel_center(raster.width() - 1, raster.height() - 1);
    let tile_box = Mbr::new(
        vec![a[0].min(b[0]), a[1].min(b[1])],
        vec![a[0].max(b[0]), a[1].max(b[1])],
    );
    let inherited: Arc<Vec<NodeId>> = if addr.z == 0 {
        Arc::new(vec![entry.tree.root()])
    } else {
        let parents = inner.frontiers.lock().expect("frontier map poisoned");
        parents
            .get(&(dataset, addr.z - 1, addr.x / 2, addr.y / 2))
            .cloned()
            .unwrap_or_else(|| Arc::new(vec![entry.tree.root()]))
    };
    match certify_box(&entry.tree, entry.kernel, inner.tau, &tile_box, &inherited) {
        BoxCertification::Decided(hot) => {
            let mut mask = BinaryGrid::falses(raster.width(), raster.height());
            if hot {
                for row in 0..raster.height() {
                    for col in 0..raster.width() {
                        mask.set(col, row, true);
                    }
                }
            }
            Ok(TileImage {
                image: render_binary(&mask),
                degraded_pixels: 0,
            })
        }
        BoxCertification::Undecided(frontier) => {
            if addr.z < inner.max_z {
                let mut map = inner.frontiers.lock().expect("frontier map poisoned");
                if map.len() < MAX_STORED_FRONTIERS {
                    map.insert((dataset, addr.z, addr.x, addr.y), Arc::new(frontier));
                }
            }
            let mut budget = inner.policy.issue();
            if inner.batch {
                // Box certification was inconclusive, so the tile pays
                // for refinement; the batched engine re-derives its own
                // (deeper) shared frontier from the root, which
                // subsumes what the inherited certificate frontier
                // would have seeded per-pixel.
                let mut tev = TileEvaluator::new(&entry.tree, entry.kernel, inner.family);
                if traced {
                    render_tile_tau_batched_probed(
                        &mut tev,
                        raster,
                        inner.tau,
                        &mut budget,
                        metrics,
                        depth,
                    )
                } else {
                    render_tile_tau_batched(&mut tev, raster, inner.tau, &mut budget, metrics)
                }
            } else {
                let mut ev = RefineEvaluator::new(&entry.tree, entry.kernel, inner.family);
                if traced {
                    render_tile_tau_probed(&mut ev, raster, inner.tau, &mut budget, metrics, depth)
                } else {
                    render_tile_tau(&mut ev, raster, inner.tau, &mut budget, metrics)
                }
            }
        }
    }
}

/// The `/metrics` document: HTTP + cache counters and the merged
/// refinement telemetry, all through the kdv-telemetry JSON writer.
fn metrics_json(inner: &Inner) -> Value {
    let cache = inner.cache.snapshot();
    let mut cache_fields = match cache.to_json() {
        Value::Obj(fields) => fields,
        _ => unreachable!("cache snapshot serializes to an object"),
    };
    cache_fields.push((
        "bytes_used".to_string(),
        json::num_u(inner.cache.bytes_used() as u64),
    ));
    cache_fields.push((
        "entries".to_string(),
        json::num_u(inner.cache.entries() as u64),
    ));
    let render = inner
        .metrics
        .lock()
        .expect("metrics aggregate poisoned")
        .to_json("tiles");
    let mut store_fields = match inner.catalog.counters().snapshot().to_json() {
        Value::Obj(fields) => fields,
        _ => unreachable!("store snapshot serializes to an object"),
    };
    store_fields.push(("catalog".to_string(), inner.catalog.status_json()));
    Value::obj(vec![
        ("schema", Value::Str("kdv-serve-metrics/6".to_string())),
        (
            "uptime_ms",
            json::num_u(inner.started.elapsed().as_millis() as u64),
        ),
        ("startup", inner.startup.to_json()),
        ("http", inner.http.snapshot().to_json()),
        ("cache", Value::Obj(cache_fields)),
        ("render", render),
        ("store", Value::Obj(store_fields)),
        ("ingest", inner.ingest_counters.snapshot().to_json()),
        ("pyramid", inner.pyramid.snapshot().to_json()),
        ("trace", trace_json(inner)),
    ])
}

/// The `trace` block of the JSON `/metrics` document: ring state and
/// per-stage latency summaries (microseconds).
fn trace_json(inner: &Inner) -> Value {
    let Some(ring) = &inner.traces else {
        return Value::obj(vec![("enabled", Value::Bool(false))]);
    };
    let stages = inner.stages.lock().expect("stage histograms poisoned");
    let hist_summary = |h: &LogHistogram| {
        Value::obj(vec![
            ("count", json::num_u(h.count())),
            ("mean_us", json::num_f(h.mean())),
            ("p50_le_us", json::num_u(h.quantile_le(0.5))),
            ("p99_le_us", json::num_u(h.quantile_le(0.99))),
            ("max_us", json::num_u(h.max())),
        ])
    };
    let mut stage_fields: Vec<(&str, Value)> = STAGES
        .iter()
        .zip(stages.stages.iter())
        .map(|(name, h)| (*name, hist_summary(h)))
        .collect();
    stage_fields.push(("total", hist_summary(&stages.total)));
    Value::obj(vec![
        ("enabled", Value::Bool(true)),
        (
            "slow_threshold_ms",
            json::num_u(ring.slow_threshold_us() / 1_000),
        ),
        ("completed", json::num_u(ring.completed())),
        ("slow_seen", json::num_u(ring.slow_seen())),
        ("stages", Value::obj(stage_fields)),
    ])
}

/// `/metrics?format=prometheus`: the same counters and histograms in
/// text exposition 0.0.4. Names carry the `kdv_` prefix and base units
/// (`_seconds`, `_bytes`) per the Prometheus conventions; the
/// [`PromWriter`] enforces header-before-samples and name uniqueness.
fn metrics_prometheus(inner: &Inner) -> String {
    let mut w = PromWriter::new();
    w.gauge(
        "kdv_uptime_seconds",
        "Seconds since the server started.",
        inner.started.elapsed().as_secs_f64(),
    );
    let http = inner.http.snapshot();
    w.counter(
        "kdv_http_requests_total",
        "Requests that reached routing.",
        http.requests as f64,
    );
    w.counter_family(
        "kdv_http_responses_total",
        "Responses by outcome class.",
        &[
            ("class=\"ok\"".to_string(), http.ok as f64),
            ("class=\"bad_request\"".to_string(), http.bad_request as f64),
            ("class=\"not_found\"".to_string(), http.not_found as f64),
            ("class=\"rejected\"".to_string(), http.rejected as f64),
            (
                "class=\"internal_error\"".to_string(),
                http.internal_error as f64,
            ),
        ],
    );
    w.counter(
        "kdv_http_degraded_responses_total",
        "200 responses that carried the degraded marker.",
        http.degraded as f64,
    );
    w.counter(
        "kdv_http_response_bytes_total",
        "Response body bytes written.",
        http.bytes_sent as f64,
    );
    let cache = inner.cache.snapshot();
    w.counter(
        "kdv_cache_hits_total",
        "Tile-cache hits.",
        cache.hits as f64,
    );
    w.counter(
        "kdv_cache_misses_total",
        "Tile-cache misses.",
        cache.misses as f64,
    );
    w.counter(
        "kdv_cache_insertions_total",
        "Tiles inserted into the cache.",
        cache.insertions as f64,
    );
    w.counter(
        "kdv_cache_evictions_total",
        "Tiles evicted to make room.",
        cache.evictions as f64,
    );
    w.counter(
        "kdv_cache_evicted_bytes_total",
        "Payload bytes evicted.",
        cache.evicted_bytes as f64,
    );
    w.gauge(
        "kdv_cache_bytes_used",
        "Payload bytes resident in the tile cache.",
        inner.cache.bytes_used() as f64,
    );
    w.gauge(
        "kdv_cache_entries",
        "Tiles resident in the cache.",
        inner.cache.entries() as f64,
    );
    let store = inner.catalog.counters().snapshot();
    w.counter(
        "kdv_store_loads_total",
        "Datasets materialized from snapshots.",
        store.loads as f64,
    );
    w.counter(
        "kdv_store_builds_total",
        "Datasets built from raw data.",
        store.builds as f64,
    );
    w.counter(
        "kdv_store_load_failures_total",
        "Failed dataset materializations.",
        store.load_failures as f64,
    );
    w.counter(
        "kdv_store_checksum_failures_total",
        "Snapshot loads rejected for CRC mismatches.",
        store.checksum_failures as f64,
    );
    w.counter(
        "kdv_store_evictions_total",
        "Datasets evicted under the byte budget.",
        store.evictions as f64,
    );
    w.counter(
        "kdv_store_evicted_bytes_total",
        "Estimated bytes released by dataset evictions.",
        store.evicted_bytes as f64,
    );
    w.histogram(
        "kdv_store_load_seconds",
        "Wall time per snapshot load.",
        &store.load_ns,
        1e-9,
    );
    w.histogram(
        "kdv_store_build_seconds",
        "Wall time per from-source dataset build.",
        &store.build_ns,
        1e-9,
    );
    let ingest = inner.ingest_counters.snapshot();
    w.counter_family(
        "kdv_ingest_records_total",
        "Durable WAL records written, by operation.",
        &[
            ("op=\"append\"".to_string(), ingest.appends as f64),
            ("op=\"tombstone\"".to_string(), ingest.tombstones as f64),
        ],
    );
    w.counter_family(
        "kdv_ingest_points_total",
        "Points carried by durable WAL records, by operation.",
        &[
            ("op=\"append\"".to_string(), ingest.append_points as f64),
            (
                "op=\"tombstone\"".to_string(),
                ingest.tombstone_points as f64,
            ),
        ],
    );
    w.counter(
        "kdv_ingest_acks_total",
        "Writes acknowledged after reaching the durability point.",
        ingest.acks as f64,
    );
    w.counter_family(
        "kdv_ingest_rejections_total",
        "Ingest requests refused before any WAL write.",
        &[
            (
                "reason=\"too_large\"".to_string(),
                ingest.rejected_too_large as f64,
            ),
            (
                "reason=\"backpressure\"".to_string(),
                ingest.rejected_backpressure as f64,
            ),
        ],
    );
    w.counter(
        "kdv_ingest_wal_bytes_total",
        "WAL record bytes appended.",
        ingest.wal_bytes as f64,
    );
    w.counter(
        "kdv_ingest_fsyncs_total",
        "WAL fsync calls issued.",
        ingest.fsyncs as f64,
    );
    w.counter(
        "kdv_ingest_compactions_total",
        "Memtable-to-snapshot compactions completed.",
        ingest.compactions as f64,
    );
    w.counter(
        "kdv_ingest_compaction_failures_total",
        "Compactions that failed and left the WAL intact.",
        ingest.compaction_failures as f64,
    );
    w.counter(
        "kdv_ingest_replays_total",
        "Boot-time WAL replays.",
        ingest.replays as f64,
    );
    w.counter(
        "kdv_ingest_replayed_records_total",
        "Records recovered by WAL replays.",
        ingest.replayed_records as f64,
    );
    w.counter(
        "kdv_ingest_torn_tails_total",
        "Replays that truncated a torn WAL tail.",
        ingest.torn_tails as f64,
    );
    w.counter(
        "kdv_ingest_invalidated_tiles_total",
        "Cached tiles dropped because a write could alter them.",
        ingest.invalidated_tiles as f64,
    );
    let pyr = inner.pyramid.snapshot();
    let mut pyr_family: Vec<(String, f64)> = (0..MAX_TRACKED_LEVELS)
        .map(|l| (format!("level=\"{l}\""), pyr.level_renders[l] as f64))
        .collect();
    pyr_family.push(("level=\"full\"".to_string(), pyr.full_renders as f64));
    w.counter_family(
        "kdv_pyramid_renders_total",
        "Tile renders by the coreset level that served them.",
        &pyr_family,
    );
    w.counter(
        "kdv_pyramid_tau_fallback_pixels_total",
        "Tau-band pixels re-decided exactly against the full index.",
        pyr.tau_exact_fallback_pixels as f64,
    );
    w.histogram(
        "kdv_ingest_ack_seconds",
        "Wall time from WAL append to durable ack.",
        &ingest.ack_ns,
        1e-9,
    );
    w.histogram(
        "kdv_ingest_compaction_seconds",
        "Wall time per compaction.",
        &ingest.compact_ns,
        1e-9,
    );
    {
        let render = inner.metrics.lock().expect("metrics aggregate poisoned");
        w.counter(
            "kdv_render_pixels_total",
            "Tile pixels rendered.",
            render.pixels as f64,
        );
        w.counter(
            "kdv_render_heap_pops_total",
            "Refinement heap pops across all tiles.",
            render.events.heap_pops as f64,
        );
        w.counter(
            "kdv_render_node_bounds_total",
            "Quadratic bound evaluations.",
            render.events.node_bounds as f64,
        );
        w.counter(
            "kdv_render_point_evals_total",
            "Exact kernel evaluations at leaves.",
            render.events.point_evals as f64,
        );
        w.counter(
            "kdv_render_resyncs_total",
            "Kahan-resync passes over the refinement heap.",
            render.events.resyncs as f64,
        );
        w.counter(
            "kdv_render_degraded_pixels_total",
            "Pixels cut short by a render budget.",
            render.degraded_pixels as f64,
        );
        w.counter(
            "kdv_render_frontier_reuse_total",
            "Node-bound evaluations avoided via shared tile frontiers.",
            render.frontier_reuse as f64,
        );
        w.gauge(
            "kdv_render_simd_lanes",
            "f64 lanes per distance evaluation (4 on the AVX2 path, 1 scalar).",
            render.simd_lanes as f64,
        );
        w.histogram(
            "kdv_render_pixel_seconds",
            "Per-pixel refinement latency.",
            &render.latency_ns,
            1e-9,
        );
        w.histogram(
            "kdv_render_iterations",
            "Refinement iterations per pixel.",
            &render.iterations,
            1.0,
        );
    }
    if let Some(ring) = &inner.traces {
        w.counter(
            "kdv_traces_total",
            "Requests traced end to end.",
            ring.completed() as f64,
        );
        w.counter(
            "kdv_slow_traces_total",
            "Traces at or over the slow threshold.",
            ring.slow_seen() as f64,
        );
        let stages = inner.stages.lock().expect("stage histograms poisoned");
        let labels: Vec<String> = STAGES.iter().map(|s| format!("stage=\"{s}\"")).collect();
        let series: Vec<(&str, &LogHistogram)> = labels
            .iter()
            .map(String::as_str)
            .zip(stages.stages.iter())
            .collect();
        w.histogram_family(
            "kdv_stage_duration_seconds",
            "Per-stage request latency, from traces.",
            &series,
            1e-6,
        );
        w.histogram(
            "kdv_request_duration_seconds",
            "End-to-end request latency (accept to response written).",
            &stages.total,
            1e-6,
        );
    }
    w.finish()
}

//! The tile server: worker pool, admission control, routing.
//!
//! Architecture (one process, no async runtime):
//!
//! * an **accept thread** owns the `TcpListener`. Each accepted
//!   connection is pushed onto a *bounded* queue; when the queue is
//!   full the accept thread answers `429 Too Many Requests` with a
//!   `Retry-After` hint itself rather than letting latency grow
//!   without bound — load shedding at the door, not in the kitchen,
//! * a fixed pool of **worker threads** pops connections, parses one
//!   request, routes it, and closes the socket (`Connection: close`;
//!   tile clients multiplex by opening parallel connections anyway),
//! * the dataset's kd-tree is built **once** at startup and shared
//!   immutably (`Arc`); each request constructs its own cheap
//!   [`RefineEvaluator`] over the shared tree,
//! * every tile render runs under a fresh [`RenderBudget`] issued by
//!   the configured [`BudgetPolicy`], so one adversarial tile degrades
//!   (HTTP `200` + `X-Kdv-Degraded`) instead of starving the pool,
//! * rendered tiles land in the sharded byte-capacity LRU
//!   ([`crate::cache`]) — except degraded ones: caching a tile that
//!   only exists because the server was momentarily overloaded would
//!   serve the degraded bytes forever after the load has passed.
//!
//! [`RenderBudget`]: kdv_core::engine::RenderBudget

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use kdv_core::bounds::BoundFamily;
use kdv_core::engine::{BudgetPolicy, RefineEvaluator};
use kdv_core::error::KdvError;
use kdv_core::kernel::Kernel;
use kdv_core::raster::RasterSpec;
use kdv_geom::{Mbr, PointSet};
use kdv_index::{KdTree, NodeId};
use kdv_telemetry::json::{self, Value};
use kdv_telemetry::{HttpCounters, RenderMetrics};
use kdv_viz::colormap::render_binary;
use kdv_viz::render::BinaryGrid;
use kdv_viz::tile_render::{pyramid_raster, render_tile_eps, render_tile_tau, TileImage};
use kdv_viz::tiles::{certify_box, BoxCertification};
use kdv_viz::{png, ColorMap};

use crate::cache::{TileCache, TileKey};
use crate::catalog::{finish_entry, Catalog, DatasetEntry, DatasetSource, RenderSettings};
use crate::http::{read_request, text_response, Request, Response};
use crate::tile::{parse_tile_path, TileAddr, TileKind};

/// Per-connection socket timeouts: a stuck client costs a worker at
/// most this long.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(5);

/// Upper bound on remembered τ-tile frontiers (see
/// [`Inner::frontiers`]); beyond it new frontiers are simply not
/// recorded — children fall back to the kd-tree root, which is
/// correct, just slower.
const MAX_STORED_FRONTIERS: usize = 1 << 16;

/// Longest `/debug/sleep/{ms}` pause honored.
const MAX_DEBUG_SLEEP_MS: u64 = 10_000;

/// Everything `kdv serve` needs to decide before binding a socket.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 picks a free one).
    pub addr: String,
    /// Tile edge length in pixels (tiles are square).
    pub tile_size: u32,
    /// Deepest zoom level served (tile addresses beyond it are `400`).
    pub max_z: u8,
    /// εKDV error tolerance.
    pub eps: f64,
    /// τKDV density threshold.
    pub tau: f64,
    /// Worker threads rendering tiles.
    pub workers: usize,
    /// Bounded accept-queue depth; connection `workers + queue + 1`
    /// gets a `429`.
    pub queue: usize,
    /// Tile-cache capacity in payload bytes.
    pub cache_bytes: usize,
    /// Tile-cache shard count.
    pub cache_shards: usize,
    /// Per-request render budget recipe.
    pub policy: BudgetPolicy,
    /// Margin added around the data's bounding box for the level-0
    /// window (fraction of each axis span).
    pub margin_frac: f64,
    /// Honor `GET /shutdown` (for CI and tests; off by default).
    pub allow_shutdown: bool,
    /// Honor `GET /debug/sleep/{ms}` (a testing aid that holds a
    /// worker busy; off by default).
    pub debug_sleep: bool,
    /// Milliseconds the caller spent loading the raw data before
    /// handing it over (the CLI measures its CSV read); folded into
    /// the startup report so `startup.total_ms` is honest end-to-end.
    pub data_load_ms: u64,
    /// Estimated-byte budget across materialized catalog datasets
    /// (store mode only); 0 disables eviction.
    pub store_budget_bytes: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            tile_size: 256,
            max_z: 5,
            eps: 0.05,
            tau: 1e-3,
            workers: 4,
            queue: 64,
            cache_bytes: 64 << 20,
            cache_shards: 8,
            policy: BudgetPolicy::unlimited(),
            margin_frac: 0.05,
            allow_shutdown: false,
            debug_sleep: false,
            data_load_ms: 0,
            store_budget_bytes: 0,
        }
    }
}

/// Where the boot time went, for the startup log line and `/metrics`.
///
/// The store exists to shrink `index_ms`: building the kd-tree and its
/// moments is the dominant cost, and a snapshot-backed boot replaces it
/// with a directory scan (datasets then load lazily, off the boot
/// path).
#[derive(Debug, Clone, Copy)]
pub struct StartupReport {
    /// End-to-end milliseconds from data to accepting sockets.
    pub total_ms: u64,
    /// Reading the raw data (reported by the caller; 0 when unknown).
    pub data_load_ms: u64,
    /// Building the index — or, in store mode, scanning the catalog.
    pub index_ms: u64,
    /// The εKDV color-scale sweep (pyramid warm-up).
    pub warm_ms: u64,
    /// `"built"` for an in-process tree, `"catalog"` for a store boot.
    pub source: &'static str,
}

impl StartupReport {
    fn to_json(self) -> Value {
        Value::obj(vec![
            ("total_ms", json::num_u(self.total_ms)),
            ("data_load_ms", json::num_u(self.data_load_ms)),
            ("index_ms", json::num_u(self.index_ms)),
            ("warm_ms", json::num_u(self.warm_ms)),
            ("source", Value::Str(self.source.to_string())),
        ])
    }
}

/// Why the server failed to start.
#[derive(Debug)]
pub enum ServeError {
    /// A configuration or dataset problem.
    Config(String),
    /// A socket-layer failure (bind, listen).
    Io(io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(m) => write!(f, "configuration error: {m}"),
            ServeError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<KdvError> for ServeError {
    fn from(e: KdvError) -> Self {
        ServeError::Config(e.to_string())
    }
}

/// Inherited τ-certification frontiers, keyed by dataset slot + tile
/// address (τ tiles only — ε tiles have no transferable certificate).
type FrontierMap = HashMap<(u32, u8, u32, u32), Arc<Vec<NodeId>>>;

/// Shared immutable server state plus the few mutable rendezvous
/// points (cache shards, metrics, frontiers — each behind its own
/// fine-grained lock or atomic).
struct Inner {
    /// Every dataset this server fronts. Single-dataset mode is a
    /// one-slot catalog; store mode scans a directory and loads lazily.
    catalog: Catalog,
    /// Whether tile paths carry a `{dataset}` segment (store mode).
    multi: bool,
    family: BoundFamily,
    eps: f64,
    tau: f64,
    cm: ColorMap,
    policy: BudgetPolicy,
    max_z: u8,
    cache: TileCache,
    http: HttpCounters,
    /// Live merged refinement telemetry across all tile renders.
    metrics: Mutex<RenderMetrics>,
    /// Parent→child bound reuse: an undecided τ tile's refined node
    /// frontier is valid for all four children (bounds certified for a
    /// box hold for any sub-box), so children start refinement there
    /// instead of at the kd-tree root.
    frontiers: Mutex<FrontierMap>,
    startup: StartupReport,
    shutdown: AtomicBool,
    allow_shutdown: bool,
    debug_sleep: bool,
    local_addr: SocketAddr,
    started: Instant,
}

/// A running tile server (see [`TileServer::start`]).
pub struct TileServer {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl TileServer {
    /// Validates the configuration, builds the kd-tree, sweeps the
    /// density range for the shared color scale, binds the socket, and
    /// spawns the accept thread plus `config.workers` render workers.
    ///
    /// `points` should already carry their normalized weights (the CLI
    /// applies `scale_weights` before calling this); `kernel` is the
    /// bandwidth-calibrated kernel shared by every tile.
    pub fn start(
        config: ServerConfig,
        points: &PointSet,
        kernel: Kernel,
    ) -> Result<Self, ServeError> {
        validate_config(&config)?;
        let build_started = Instant::now();
        let tree = KdTree::build_default(points);
        let index_ms = build_started.elapsed().as_millis() as u64;
        let entry = finish_entry(
            "default",
            tree,
            kernel,
            render_settings(&config),
            index_ms,
            DatasetSource::Built,
        )
        .map_err(ServeError::Config)?;
        let startup = StartupReport {
            total_ms: config.data_load_ms + index_ms + entry.warm_ms,
            data_load_ms: config.data_load_ms,
            index_ms,
            warm_ms: entry.warm_ms,
            source: "built",
        };
        Self::start_inner(config, Catalog::single(entry), startup, false)
    }

    /// Boots from a store directory instead of raw points: scans the
    /// catalog (`{name}.kdvs` snapshots, `{name}.csv` fallbacks),
    /// binds, and serves `/tiles/{dataset}/{kind}/{z}/{x}/{y}.png`.
    /// Datasets materialize lazily on first touch — the boot path pays
    /// a directory scan, not an index build.
    pub fn start_with_store(config: ServerConfig, store_dir: &Path) -> Result<Self, ServeError> {
        validate_config(&config)?;
        let scan_started = Instant::now();
        let catalog = Catalog::open(
            store_dir,
            config.store_budget_bytes,
            render_settings(&config),
        )
        .map_err(ServeError::Config)?;
        let index_ms = scan_started.elapsed().as_millis() as u64;
        let startup = StartupReport {
            total_ms: config.data_load_ms + index_ms,
            data_load_ms: config.data_load_ms,
            index_ms,
            warm_ms: 0,
            source: "catalog",
        };
        Self::start_inner(config, catalog, startup, true)
    }

    fn start_inner(
        config: ServerConfig,
        catalog: Catalog,
        startup: StartupReport,
        multi: bool,
    ) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;

        let inner = Arc::new(Inner {
            catalog,
            multi,
            family: BoundFamily::Quadratic,
            eps: config.eps,
            tau: config.tau,
            cm: ColorMap::heat(),
            policy: config.policy,
            max_z: config.max_z,
            cache: TileCache::new(config.cache_bytes, config.cache_shards),
            http: HttpCounters::default(),
            metrics: Mutex::new(RenderMetrics::new()),
            frontiers: Mutex::new(HashMap::new()),
            startup,
            shutdown: AtomicBool::new(false),
            allow_shutdown: config.allow_shutdown,
            debug_sleep: config.debug_sleep,
            local_addr,
            started: Instant::now(),
        });

        let (tx, rx) = sync_channel::<TcpStream>(config.queue);
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let inner = Arc::clone(&inner);
            let rx = Arc::clone(&rx);
            let handle = std::thread::Builder::new()
                .name(format!("kdv-serve-worker-{i}"))
                .spawn(move || worker_loop(&inner, &rx))
                .map_err(ServeError::Io)?;
            workers.push(handle);
        }

        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("kdv-serve-accept".to_string())
                .spawn(move || accept_loop(&inner, &listener, tx))
                .map_err(ServeError::Io)?
        };

        Ok(Self {
            inner,
            addr: local_addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Where this server's boot time went (also under `startup` in
    /// `/metrics`). The CLI logs it right after binding.
    pub fn startup(&self) -> StartupReport {
        self.inner.startup
    }

    /// Sorted names of the datasets this server fronts.
    pub fn dataset_names(&self) -> Vec<String> {
        self.inner
            .catalog
            .names()
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    /// Blocks until the server shuts down (via [`TileServer::stop`]
    /// from another thread, or a `GET /shutdown` when enabled).
    pub fn join(mut self) {
        self.join_threads();
    }

    /// Initiates shutdown and waits for every thread to exit.
    pub fn stop(mut self) {
        self.request_stop();
        self.join_threads();
    }

    fn request_stop(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept thread's blocking `accept()`.
        let _ = TcpStream::connect(self.addr);
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn validate_config(config: &ServerConfig) -> Result<(), ServeError> {
    if config.tile_size < 8 || config.tile_size > 1024 {
        return Err(ServeError::Config(format!(
            "tile size must be in [8, 1024], got {}",
            config.tile_size
        )));
    }
    if config.workers == 0 {
        return Err(ServeError::Config("need at least one worker".into()));
    }
    if config.queue == 0 {
        return Err(ServeError::Config("queue depth must be at least 1".into()));
    }
    if !(config.eps.is_finite() && config.eps > 0.0) {
        return Err(ServeError::Config(format!(
            "ε must be positive, got {}",
            config.eps
        )));
    }
    if !(config.tau.is_finite() && config.tau > 0.0) {
        return Err(ServeError::Config(format!(
            "τ must be positive, got {}",
            config.tau
        )));
    }
    Ok(())
}

fn render_settings(config: &ServerConfig) -> RenderSettings {
    RenderSettings {
        tile_size: config.tile_size,
        margin_frac: config.margin_frac,
        eps: config.eps,
    }
}

fn accept_loop(inner: &Inner, listener: &TcpListener, tx: std::sync::mpsc::SyncSender<TcpStream>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
        let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                // Admission control: shed load at the door with a hint
                // instead of queueing unboundedly. Drain the request
                // bytes already in flight first — closing with unread
                // data sends RST, and the client would see a reset
                // instead of the 429.
                inner.http.rejected();
                let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                let mut scratch = [0u8; 1024];
                let _ = io::Read::read(&mut stream, &mut scratch);
                let resp = text_response(429, "Too Many Requests", "tile queue is full")
                    .header("Retry-After", "1");
                let _ = resp.write_to(&mut stream);
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Dropping `tx` here disconnects the channel; workers drain the
    // queue and exit.
}

fn worker_loop(inner: &Inner, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        let stream = {
            let guard = rx.lock().expect("accept queue poisoned");
            guard.recv()
        };
        match stream {
            Ok(mut stream) => handle_connection(inner, &mut stream),
            Err(_) => break, // accept thread gone and queue drained
        }
    }
}

fn handle_connection(inner: &Inner, stream: &mut TcpStream) {
    let request = match read_request(stream) {
        Ok(Ok(request)) => request,
        Ok(Err(message)) => {
            inner.http.bad_request();
            let _ = text_response(400, "Bad Request", &message).write_to(stream);
            return;
        }
        Err(_) => return, // transport failure: nothing to answer
    };
    inner.http.request();
    let response = route(inner, &request);
    if response.write_to(stream).is_ok() {
        inner.http.sent(response.body_len() as u64);
    }
    if inner.shutdown.load(Ordering::SeqCst) {
        // Wake the accept thread so shutdown is prompt.
        let _ = TcpStream::connect(inner.local_addr);
    }
}

fn route(inner: &Inner, request: &Request) -> Response {
    if request.method != "GET" {
        inner.http.bad_request();
        return text_response(400, "Bad Request", "only GET is supported");
    }
    let path = request.path.as_str();
    if let Some(rest) = path.strip_prefix("/debug/sleep/") {
        return debug_sleep(inner, rest);
    }
    match path {
        "/metrics" => {
            let body = metrics_json(inner).render();
            inner.http.ok(false);
            Response::new(200, "OK").body("application/json", body.into_bytes())
        }
        "/healthz" => {
            inner.http.ok(false);
            text_response(200, "OK", "ok")
        }
        "/shutdown" => {
            if inner.allow_shutdown {
                inner.shutdown.store(true, Ordering::SeqCst);
                inner.http.ok(false);
                text_response(200, "OK", "shutting down")
            } else {
                inner.http.not_found();
                text_response(404, "Not Found", "shutdown is not enabled")
            }
        }
        p if p.starts_with("/tiles/") => tile_response(inner, p),
        _ => {
            inner.http.not_found();
            text_response(404, "Not Found", "no such resource")
        }
    }
}

fn debug_sleep(inner: &Inner, ms: &str) -> Response {
    if !inner.debug_sleep {
        inner.http.not_found();
        return text_response(404, "Not Found", "debug endpoints are not enabled");
    }
    match ms.parse::<u64>() {
        Ok(ms) if ms <= MAX_DEBUG_SLEEP_MS => {
            std::thread::sleep(Duration::from_millis(ms));
            inner.http.ok(false);
            text_response(200, "OK", "slept")
        }
        _ => {
            inner.http.bad_request();
            text_response(400, "Bad Request", "sleep duration must be a small integer")
        }
    }
}

fn tile_response(inner: &Inner, path: &str) -> Response {
    let (dataset, addr) = match parse_tile_path(path, inner.max_z, inner.multi) {
        Ok(parsed) => parsed,
        Err(e) => {
            inner.http.bad_request();
            return text_response(400, "Bad Request", &e.to_string());
        }
    };
    let idx = match &dataset {
        Some(name) => match inner.catalog.lookup(name) {
            Some(idx) => idx,
            None => {
                inner.http.not_found();
                return text_response(
                    404,
                    "Not Found",
                    &format!("no dataset {name:?} in this catalog"),
                );
            }
        },
        None => 0,
    };
    // Materialize the dataset (instant when already resident). A load
    // failure — corrupt snapshot, unreadable file — is a 500 with the
    // store's structured message, and is *not* cached: replacing the
    // file heals the dataset on the next request.
    let entry = match inner.catalog.get(idx) {
        Ok(entry) => entry,
        Err(message) => {
            inner.http.internal_error();
            return text_response(500, "Internal Server Error", &message);
        }
    };
    let key = TileKey {
        dataset: idx as u32,
        addr,
        param_bits: match addr.kind {
            TileKind::Eps => inner.eps.to_bits(),
            TileKind::Tau => inner.tau.to_bits(),
        },
        gamma_bits: entry.kernel.gamma.to_bits(),
    };
    if let Some(data) = inner.cache.get(&key) {
        inner.http.ok(false);
        return Response::new(200, "OK")
            .header("X-Kdv-Cache", "hit")
            .body("image/png", data.as_ref().clone());
    }
    match render_tile(inner, &entry, idx as u32, addr) {
        Ok((bytes, degraded_pixels)) => {
            let data = Arc::new(bytes);
            if degraded_pixels == 0 {
                // Degraded tiles are *served* but never cached: they
                // reflect transient overload, not the density field.
                inner.cache.insert(key, Arc::clone(&data));
            }
            inner.http.ok(degraded_pixels > 0);
            let mut response = Response::new(200, "OK").header("X-Kdv-Cache", "miss");
            if degraded_pixels > 0 {
                response = response.header("X-Kdv-Degraded", degraded_pixels.to_string());
            }
            response.body("image/png", data.as_ref().clone())
        }
        Err(e) => {
            inner.http.internal_error();
            text_response(500, "Internal Server Error", &e.to_string())
        }
    }
}

/// Renders one tile under a fresh budget, merging its telemetry into
/// the server-wide aggregate. Returns the encoded PNG and the number
/// of budget-degraded pixels.
fn render_tile(
    inner: &Inner,
    entry: &DatasetEntry,
    dataset: u32,
    addr: TileAddr,
) -> Result<(Vec<u8>, u64), KdvError> {
    let raster = pyramid_raster(&entry.base, addr.z, addr.x, addr.y)?;
    let mut metrics = RenderMetrics::new();
    let tile = match addr.kind {
        TileKind::Eps => {
            let mut budget = inner.policy.issue();
            let mut ev = RefineEvaluator::new(&entry.tree, entry.kernel, inner.family);
            render_tile_eps(
                &mut ev,
                &raster,
                inner.eps,
                &mut budget,
                &inner.cm,
                entry.scale,
                &mut metrics,
            )?
        }
        TileKind::Tau => render_tau_tile(inner, entry, dataset, addr, &raster, &mut metrics)?,
    };
    inner
        .metrics
        .lock()
        .expect("metrics aggregate poisoned")
        .merge(&metrics);
    Ok((png::encode(&tile.image), tile.degraded_pixels))
}

/// τ tiles go through box certification first: if the whole tile's
/// bound bracket clears τ the tile is painted wholesale without
/// touching the per-pixel engine. Either way, the refined frontier is
/// inherited from the parent tile and (when undecided) recorded for
/// the children — the same reuse that makes the hierarchical τ
/// renderer cheap, applied across pyramid levels.
fn render_tau_tile(
    inner: &Inner,
    entry: &DatasetEntry,
    dataset: u32,
    addr: TileAddr,
    raster: &RasterSpec,
    metrics: &mut RenderMetrics,
) -> Result<TileImage, KdvError> {
    let a = raster.pixel_center(0, 0);
    let b = raster.pixel_center(raster.width() - 1, raster.height() - 1);
    let tile_box = Mbr::new(
        vec![a[0].min(b[0]), a[1].min(b[1])],
        vec![a[0].max(b[0]), a[1].max(b[1])],
    );
    let inherited: Arc<Vec<NodeId>> = if addr.z == 0 {
        Arc::new(vec![entry.tree.root()])
    } else {
        let parents = inner.frontiers.lock().expect("frontier map poisoned");
        parents
            .get(&(dataset, addr.z - 1, addr.x / 2, addr.y / 2))
            .cloned()
            .unwrap_or_else(|| Arc::new(vec![entry.tree.root()]))
    };
    match certify_box(&entry.tree, entry.kernel, inner.tau, &tile_box, &inherited) {
        BoxCertification::Decided(hot) => {
            let mut mask = BinaryGrid::falses(raster.width(), raster.height());
            if hot {
                for row in 0..raster.height() {
                    for col in 0..raster.width() {
                        mask.set(col, row, true);
                    }
                }
            }
            Ok(TileImage {
                image: render_binary(&mask),
                degraded_pixels: 0,
            })
        }
        BoxCertification::Undecided(frontier) => {
            if addr.z < inner.max_z {
                let mut map = inner.frontiers.lock().expect("frontier map poisoned");
                if map.len() < MAX_STORED_FRONTIERS {
                    map.insert((dataset, addr.z, addr.x, addr.y), Arc::new(frontier));
                }
            }
            let mut budget = inner.policy.issue();
            let mut ev = RefineEvaluator::new(&entry.tree, entry.kernel, inner.family);
            render_tile_tau(&mut ev, raster, inner.tau, &mut budget, metrics)
        }
    }
}

/// The `/metrics` document: HTTP + cache counters and the merged
/// refinement telemetry, all through the kdv-telemetry JSON writer.
fn metrics_json(inner: &Inner) -> Value {
    let cache = inner.cache.snapshot();
    let mut cache_fields = match cache.to_json() {
        Value::Obj(fields) => fields,
        _ => unreachable!("cache snapshot serializes to an object"),
    };
    cache_fields.push((
        "bytes_used".to_string(),
        json::num_u(inner.cache.bytes_used() as u64),
    ));
    cache_fields.push((
        "entries".to_string(),
        json::num_u(inner.cache.entries() as u64),
    ));
    let render = inner
        .metrics
        .lock()
        .expect("metrics aggregate poisoned")
        .to_json("tiles");
    let mut store_fields = match inner.catalog.counters().snapshot().to_json() {
        Value::Obj(fields) => fields,
        _ => unreachable!("store snapshot serializes to an object"),
    };
    store_fields.push(("catalog".to_string(), inner.catalog.status_json()));
    Value::obj(vec![
        ("schema", Value::Str("kdv-serve-metrics/2".to_string())),
        (
            "uptime_ms",
            json::num_u(inner.started.elapsed().as_millis() as u64),
        ),
        ("startup", inner.startup.to_json()),
        ("http", inner.http.snapshot().to_json()),
        ("cache", Value::Obj(cache_fields)),
        ("render", render),
        ("store", Value::Obj(store_fields)),
    ])
}

//! Tile addresses: parsing `/tiles/{kind}/{z}/{x}/{y}.png` paths.
//!
//! The address grammar is deliberately rigid — a tile URL is a cache
//! key, and two spellings of one tile (`/tiles/eps/1/01/0.png` vs
//! `/tiles/eps/1/1/0.png`) would silently double-render and
//! double-cache. Every component must therefore be canonical: decimal
//! digits, no leading zeros (except `0` itself), no signs, no
//! whitespace. Anything else is a `400`, not a guess.

use std::fmt;

use kdv_viz::tile_render::MAX_PYRAMID_Z;

/// Which of the two paper queries a tile renders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TileKind {
    /// εKDV: colormapped density (paper §3–4).
    Eps,
    /// τKDV: two-color hotspot classification (paper §5).
    Tau,
}

impl TileKind {
    /// The path segment naming this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            TileKind::Eps => "eps",
            TileKind::Tau => "tau",
        }
    }
}

/// A fully-validated pyramid address: zoom `z`, column `x`, row `y`
/// (row 0 at the top), both in `[0, 2^z)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileAddr {
    /// Query kind.
    pub kind: TileKind,
    /// Zoom level (0 = the whole window in one tile).
    pub z: u8,
    /// Tile column.
    pub x: u32,
    /// Tile row, 0 at the top.
    pub y: u32,
}

impl fmt::Display for TileAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "/tiles/{}/{}/{}/{}.png",
            self.kind.as_str(),
            self.z,
            self.x,
            self.y
        )
    }
}

/// Why a path failed to parse as a tile address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileAddrError {
    message: String,
}

impl TileAddrError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TileAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TileAddrError {}

/// Parses a canonical decimal with no sign, no leading zeros.
fn parse_canonical_u64(s: &str, what: &str) -> Result<u64, TileAddrError> {
    if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
        return Err(TileAddrError::new(format!(
            "{what} must be a decimal number, got {s:?}"
        )));
    }
    if s.len() > 1 && s.starts_with('0') {
        return Err(TileAddrError::new(format!(
            "{what} must not have leading zeros, got {s:?}"
        )));
    }
    s.parse()
        .map_err(|_| TileAddrError::new(format!("{what} out of range: {s:?}")))
}

/// Whether `name` is a legal dataset path segment: 1–64 characters of
/// `[A-Za-z0-9_-]`. The grammar doubles as the catalog's file-stem
/// rule, so every cataloged dataset is addressable and no URL segment
/// can traverse paths or alias another dataset.
pub fn valid_dataset_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// Parses a tile path into its optional dataset segment and address,
/// enforcing `z ≤ max_z` and `x, y < 2^z`.
///
/// With `with_dataset` false the grammar is the single-dataset
/// `/tiles/{eps|tau}/{z}/{x}/{y}.png`; with it true a catalog-serving
/// grammar `/tiles/{dataset}/{eps|tau}/{z}/{x}/{y}.png` is required
/// (the dataset segment is validated by [`valid_dataset_name`] and
/// returned as `Some`). The two grammars never mix: a server knows
/// which one it speaks, and an address is a cache key.
pub fn parse_tile_path(
    path: &str,
    max_z: u8,
    with_dataset: bool,
) -> Result<(Option<String>, TileAddr), TileAddrError> {
    let rest = path
        .strip_prefix("/tiles/")
        .ok_or_else(|| TileAddrError::new("tile paths start with /tiles/"))?;
    let mut segs = rest.split('/');
    let dataset = if with_dataset {
        let name = segs
            .next()
            .ok_or_else(|| TileAddrError::new("missing dataset segment"))?;
        if !valid_dataset_name(name) {
            return Err(TileAddrError::new(format!(
                "invalid dataset name {name:?} (want 1-64 chars of [A-Za-z0-9_-])"
            )));
        }
        Some(name.to_string())
    } else {
        None
    };
    let (kind, z, x, y) = match (
        segs.next(),
        segs.next(),
        segs.next(),
        segs.next(),
        segs.next(),
    ) {
        (Some(kind), Some(z), Some(x), Some(y), None) => (kind, z, x, y),
        _ => {
            return Err(TileAddrError::new(if with_dataset {
                "tile paths have exactly five segments: /tiles/{dataset}/{kind}/{z}/{x}/{y}.png"
            } else {
                "tile paths have exactly four segments: /tiles/{kind}/{z}/{x}/{y}.png"
            }))
        }
    };
    let kind = match kind {
        "eps" => TileKind::Eps,
        "tau" => TileKind::Tau,
        other => {
            return Err(TileAddrError::new(format!(
                "unknown tile kind {other:?} (expected \"eps\" or \"tau\")"
            )))
        }
    };
    let y = y
        .strip_suffix(".png")
        .ok_or_else(|| TileAddrError::new("tile paths end in .png"))?;

    let z64 = parse_canonical_u64(z, "zoom")?;
    let max = max_z.min(MAX_PYRAMID_Z);
    if z64 > max as u64 {
        return Err(TileAddrError::new(format!(
            "zoom {z64} exceeds this server's maximum {max}"
        )));
    }
    let z = z64 as u8;
    let per_side = 1u64 << z;
    let x64 = parse_canonical_u64(x, "tile x")?;
    let y64 = parse_canonical_u64(y, "tile y")?;
    if x64 >= per_side || y64 >= per_side {
        return Err(TileAddrError::new(format!(
            "tile ({x64}, {y64}) outside the {per_side}x{per_side} grid of zoom {z}"
        )));
    }
    Ok((
        dataset,
        TileAddr {
            kind,
            z,
            x: x64 as u32,
            y: y64 as u32,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_canonical_addresses() {
        for (path, kind, z, x, y) in [
            ("/tiles/eps/0/0/0.png", TileKind::Eps, 0u8, 0u32, 0u32),
            ("/tiles/tau/3/7/5.png", TileKind::Tau, 3, 7, 5),
            ("/tiles/eps/10/1023/0.png", TileKind::Eps, 10, 1023, 0),
        ] {
            let (dataset, addr) = parse_tile_path(path, 12, false).expect(path);
            assert_eq!(dataset, None);
            assert_eq!(addr, TileAddr { kind, z, x, y });
            assert_eq!(addr.to_string(), path, "Display is the inverse");
        }
    }

    #[test]
    fn dataset_segment_parses_only_in_catalog_mode() {
        let (dataset, addr) =
            parse_tile_path("/tiles/crime_2024/tau/2/1/3.png", 4, true).expect("catalog address");
        assert_eq!(dataset.as_deref(), Some("crime_2024"));
        assert_eq!(
            addr,
            TileAddr {
                kind: TileKind::Tau,
                z: 2,
                x: 1,
                y: 3
            }
        );
        // The same path without catalog mode has the wrong arity; a
        // dataset-less path in catalog mode likewise fails (the kind
        // segment is not a valid z, and "eps" is eaten as a dataset).
        assert!(parse_tile_path("/tiles/crime_2024/tau/2/1/3.png", 4, false).is_err());
        assert!(parse_tile_path("/tiles/eps/2/1/3.png", 4, true).is_err());
        // Hostile dataset segments never parse.
        for bad in [
            "/tiles//eps/0/0/0.png",
            "/tiles/../eps/0/0/0.png",
            "/tiles/a.b/eps/0/0/0.png",
            "/tiles/sp ace/eps/0/0/0.png",
        ] {
            assert!(parse_tile_path(bad, 4, true).is_err(), "{bad}");
        }
        let long = format!("/tiles/{}/eps/0/0/0.png", "d".repeat(65));
        assert!(parse_tile_path(&long, 4, true).is_err());
        let max = format!("/tiles/{}/eps/0/0/0.png", "d".repeat(64));
        assert!(parse_tile_path(&max, 4, true).is_ok());
    }

    #[test]
    fn dataset_name_grammar() {
        for good in ["a", "crime", "el-nino_2024", "X"] {
            assert!(valid_dataset_name(good), "{good}");
        }
        for bad in ["", ".", "..", "a/b", "a b", "café", &"x".repeat(65)] {
            assert!(!valid_dataset_name(bad), "{bad:?}");
        }
    }

    #[test]
    fn rejects_malformed_addresses() {
        for bad in [
            "/tiles/eps/1/0.png",             // too few segments
            "/tiles/eps/1/0/0/0.png",         // too many segments
            "/tiles/eps/1/0/0",               // missing .png
            "/tiles/gauss/1/0/0.png",         // unknown kind
            "/tiles/eps/1/2/0.png",           // x out of range for z
            "/tiles/eps/1/0/2.png",           // y out of range for z
            "/tiles/eps/-1/0/0.png",          // signed
            "/tiles/eps/1/01/0.png",          // leading zero (cache aliasing)
            "/tiles/eps/1/0x1/0.png",         // hex
            "/tiles/eps/1/ 0/0.png",          // whitespace
            "/tiles/eps/1//0.png",            // empty segment
            "/tiles/eps/99999999999/0/0.png", // absurd zoom
            "/tiles/eps/9/0/0.png",           // beyond server max_z
            "/metrics",                       // not a tile path at all
        ] {
            assert!(
                parse_tile_path(bad, 8, false).is_err(),
                "{bad} should not parse"
            );
        }
        // `0` itself is canonical, `00` is not.
        assert!(parse_tile_path("/tiles/eps/0/0/0.png", 8, false).is_ok());
        assert!(parse_tile_path("/tiles/eps/00/0/0.png", 8, false).is_err());
    }

    #[test]
    fn server_max_z_caps_below_pyramid_max() {
        assert!(parse_tile_path("/tiles/eps/4/0/0.png", 4, false).is_ok());
        assert!(parse_tile_path("/tiles/eps/5/0/0.png", 4, false).is_err());
        // And the global pyramid ceiling holds even with a huge max_z.
        assert!(parse_tile_path("/tiles/eps/21/0/0.png", 255, false).is_err());
    }
}

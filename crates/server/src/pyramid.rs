//! Pyramid serving: level selection and the certified render paths.
//!
//! Low-zoom tiles cover the whole dataset, so the full QUAD index pays
//! its worst case exactly where tiles are most shared. The coreset
//! pyramid (`kdv-pyramid`, DESIGN.md §14) answers those tiles from a
//! certified subsample instead. The εKDV guarantee splits into two
//! absolute budgets that add:
//!
//! * **sampling** — the level's certificate bounds
//!   `|F_S(q) − F_P(q)| ≤ ε_s·W` everywhere on the window,
//! * **refinement** — the engine refines the *coreset* density to an
//!   absolute `(ε − ε_s)·W` half-gap ([`RefineEvaluator::
//!   eval_abs_budgeted`]).
//!
//! A level is admissible only when `ε_s ≤ ε/2`, so the refinement
//! share never collapses. τKDV classifies against the widened bracket
//! `τ ∓ ε_s·W`: a coreset decision that clears the band is certified
//! for the full set; pixels inside the band are re-decided exactly
//! against the full index (counted, so `/metrics` shows how much of
//! the guarantee the band costs). Memtable deltas are exact point
//! sums, so both paths merge them without touching the certificates.

use kdv_core::engine::{RefineEvaluator, RenderBudget};
use kdv_core::error::KdvError;
use kdv_core::kernel::Kernel;
use kdv_core::raster::{DensityGrid, RasterSpec};
use kdv_pyramid::Pyramid;
use kdv_viz::render::BinaryGrid;

use crate::ingest::DeltaView;

/// The [`crate::cache::TileKey::level`] byte meaning "full index".
pub(crate) const FULL_LEVEL: u8 = 0xFF;

/// Picks the pyramid level for a tile at zoom `z`, or `None` for the
/// full index. Deterministic in the entry state alone, so the pick is
/// part of the cache key *before* any rendering happens.
///
/// Two gates: pyramid tiles are a low-zoom device (`z ≤ max_z`; deep
/// tiles are cheap on the full index and callers want its exact
/// output), and the level must leave at least half of ε for
/// refinement (`ε_s ≤ ε/2`).
pub(crate) fn pick_level(pyramid: &Pyramid, z: u8, pyramid_max_z: u8, eps: f64) -> Option<usize> {
    if z > pyramid_max_z {
        return None;
    }
    pyramid.pick(eps / 2.0).map(|(idx, _)| idx)
}

/// εKDV from a coreset level: each pixel refines the coreset density
/// to an absolute `abs_tol` half-gap, then adds the exact memtable
/// delta. With `abs_tol = (ε − ε_s)·W` the rendered value is within
/// `ε·W` of the true (base + memtable) density. Returns the grid and
/// the budget-degraded pixel count.
pub(crate) fn render_eps_pyramid(
    ev: &mut RefineEvaluator<'_>,
    raster: &RasterSpec,
    abs_tol: f64,
    budget: &mut RenderBudget,
    delta: Option<&DeltaView>,
    kernel: Kernel,
) -> Result<(DensityGrid, u64), KdvError> {
    let mut grid = DensityGrid::zeros(raster.width(), raster.height());
    let mut degraded = 0u64;
    for row in 0..raster.height() {
        for col in 0..raster.width() {
            let q = raster.pixel_center(col, row);
            let e = ev.eval_abs_budgeted(&q, abs_tol, budget)?;
            let d = delta.map_or(0.0, |d| d.delta_at(&q, kernel));
            grid.set(col, row, e.estimate() + d);
            degraded += u64::from(e.exhausted);
        }
    }
    Ok((grid, degraded))
}

/// What one pyramid τ render produced.
pub(crate) struct TauPyramidOutcome {
    /// The hot/cold mask.
    pub mask: BinaryGrid,
    /// Pixels whose classification is a best-effort guess (budget ran
    /// out) — the tile is served but never cached.
    pub undecided: u64,
    /// Pixels inside the `τ ∓ ε_s·W` band that were re-decided exactly
    /// against the full index.
    pub fallback_pixels: u64,
}

/// τKDV from a coreset level with an exact-fallback band.
///
/// Per pixel, with `τ′ = τ − δ(q)` (the exact memtable shift) and
/// `B = ε_s·W`:
///
/// * `τ′ ≤ 0` — hot outright: the base density is never negative, so
///   the delta alone clears τ.
/// * coreset density certified `≥ τ′ + B` — hot for the full set.
/// * coreset density certified `< τ′ − B` — cold for the full set.
/// * otherwise (inside the band, `τ′ − B ≤ 0`, or the budget ran out
///   mid-certificate) — re-decide exactly on the full index, same
///   classification the non-pyramid path would produce.
///
/// Outside the band every certified decision agrees with the full
/// index, so pyramid τ tiles are bit-identical to full-index tiles
/// except where `|F(q) − τ′| ≤ B` — and there the fallback *is* the
/// full index.
#[allow(clippy::too_many_arguments)]
pub(crate) fn render_tau_pyramid(
    level_ev: &mut RefineEvaluator<'_>,
    full_ev: &mut RefineEvaluator<'_>,
    raster: &RasterSpec,
    tau: f64,
    band: f64,
    budget: &mut RenderBudget,
    delta: Option<&DeltaView>,
    kernel: Kernel,
) -> Result<TauPyramidOutcome, KdvError> {
    let mut mask = BinaryGrid::falses(raster.width(), raster.height());
    let mut undecided = 0u64;
    let mut fallback_pixels = 0u64;
    for row in 0..raster.height() {
        for col in 0..raster.width() {
            let q = raster.pixel_center(col, row);
            let shifted = tau - delta.map_or(0.0, |d| d.delta_at(&q, kernel));
            if shifted <= 0.0 {
                mask.set(col, row, true);
                continue;
            }
            let hi = level_ev.eval_tau_budgeted(&q, shifted + band, budget)?;
            if hi.decided && hi.hot {
                mask.set(col, row, true);
                continue;
            }
            let cold_thresh = shifted - band;
            if hi.decided && cold_thresh > 0.0 {
                let lo = level_ev.eval_tau_budgeted(&q, cold_thresh, budget)?;
                if lo.decided && !lo.hot {
                    mask.set(col, row, false);
                    continue;
                }
            }
            fallback_pixels += 1;
            let exact = full_ev.eval_tau_budgeted(&q, shifted, budget)?;
            mask.set(col, row, exact.hot);
            undecided += u64::from(!exact.decided);
        }
    }
    Ok(TauPyramidOutcome {
        mask,
        undecided,
        fallback_pixels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_core::bounds::BoundFamily;
    use kdv_data::emulate::Dataset;
    use kdv_index::KdTree;
    use kdv_pyramid::{PyramidBuilder, PyramidConfig};
    use kdv_sampling::zorder_sample;

    fn fixture() -> (KdTree, Kernel, Pyramid) {
        let points = Dataset::Crime.generate(4000, 11);
        let tree = KdTree::build_default(&points);
        let kernel = Kernel::gaussian(0.6);
        let config = PyramidConfig {
            sizes: vec![400, 1000],
            probe_res: 16,
            ..PyramidConfig::default()
        };
        let (pyramid, _) = PyramidBuilder::new(&tree, kernel)
            .with_config(config)
            .build()
            .expect("pyramid builds");
        (tree, kernel, pyramid)
    }

    #[test]
    fn pick_level_gates_on_zoom_and_budget() {
        let (_, _, pyramid) = fixture();
        let coarse = pyramid.levels()[0].eps_s;
        // A generous ε admits the smallest level at low zoom only.
        let eps = coarse * 2.0 + 1e-9;
        assert_eq!(pick_level(&pyramid, 0, 4, eps), Some(0));
        assert_eq!(pick_level(&pyramid, 4, 4, eps), Some(0));
        assert_eq!(pick_level(&pyramid, 5, 4, eps), None, "deep zoom is full");
        // A tight ε skips to the finer level, then to the full index.
        let fine = pyramid.levels()[1].eps_s;
        assert_eq!(pick_level(&pyramid, 0, 4, fine * 2.0 + 1e-9), Some(1));
        assert_eq!(pick_level(&pyramid, 0, 4, fine * 0.5), None);
        assert_eq!(pick_level(&Pyramid::empty(), 0, 4, 1.0), None);
    }

    #[test]
    fn eps_pyramid_is_within_the_combined_budget() {
        let (tree, kernel, pyramid) = fixture();
        let lv = &pyramid.levels()[1];
        let w = tree.points().total_weight();
        let eps = lv.eps_s * 2.0 + 1e-9;
        let raster = kdv_core::raster::RasterSpec::try_covering(tree.points(), 16, 16, 0.05)
            .expect("raster");
        let mut ev = RefineEvaluator::new(&lv.tree, kernel, BoundFamily::Quadratic);
        let mut budget = RenderBudget::unlimited();
        let (grid, degraded) = render_eps_pyramid(
            &mut ev,
            &raster,
            (eps - lv.eps_s) * w,
            &mut budget,
            None,
            kernel,
        )
        .expect("render");
        assert_eq!(degraded, 0);
        // Ground truth: brute-force exact density over the full set.
        let coords = tree.points().coords();
        let weights = tree.points().weights();
        for row in 0..raster.height() {
            for col in 0..raster.width() {
                let q = raster.pixel_center(col, row);
                let mut exact = 0.0;
                for (c, &wt) in coords.chunks(2).zip(weights) {
                    let d2 = (c[0] - q[0]).powi(2) + (c[1] - q[1]).powi(2);
                    exact += wt * kernel.eval_dist2(d2);
                }
                let got = grid.get(col, row);
                assert!(
                    (got - exact).abs() <= eps * w + 1e-12,
                    "pixel ({col},{row}): |{got} − {exact}| > ε·W = {}",
                    eps * w
                );
            }
        }
    }

    #[test]
    fn tau_pyramid_matches_full_index_everywhere() {
        // The certified decisions agree with the full index outside the
        // band and the band falls back to it, so the whole mask must
        // match an all-full-index render bit for bit.
        let (tree, kernel, pyramid) = fixture();
        let lv = &pyramid.levels()[0];
        let w = tree.points().total_weight();
        let band = lv.eps_s * w;
        let raster = kdv_core::raster::RasterSpec::try_covering(tree.points(), 16, 16, 0.05)
            .expect("raster");
        for tau_frac in [0.002, 0.02, 0.2] {
            let tau = w * tau_frac;
            let mut level_ev = RefineEvaluator::new(&lv.tree, kernel, BoundFamily::Quadratic);
            let mut full_ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
            let mut budget = RenderBudget::unlimited();
            let out = render_tau_pyramid(
                &mut level_ev,
                &mut full_ev,
                &raster,
                tau,
                band,
                &mut budget,
                None,
                kernel,
            )
            .expect("render");
            assert_eq!(out.undecided, 0);
            let mut reference_ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
            for row in 0..raster.height() {
                for col in 0..raster.width() {
                    let q = raster.pixel_center(col, row);
                    let expect = reference_ev.eval_tau(&q, tau);
                    assert_eq!(
                        out.mask.get(col, row),
                        expect,
                        "pixel ({col},{row}) diverged at τ = {tau_frac}·W"
                    );
                }
            }
        }
    }

    #[test]
    fn tau_pyramid_merges_the_delta_exactly() {
        // A delta hot enough to clear τ alone flips pixels hot without
        // any engine work; the fallback threshold is shifted the same
        // way the non-pyramid delta path shifts it.
        let (tree, kernel, pyramid) = fixture();
        let lv = &pyramid.levels()[0];
        let w = tree.points().total_weight();
        let raster =
            kdv_core::raster::RasterSpec::try_covering(tree.points(), 8, 8, 0.05).expect("raster");
        let q0 = raster.pixel_center(0, 0);
        let delta = DeltaView {
            appends: vec![[q0[0], q0[1], 10.0 * w]],
            removed: Vec::new(),
            epoch: 1,
        };
        let mut level_ev = RefineEvaluator::new(&lv.tree, kernel, BoundFamily::Quadratic);
        let mut full_ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut budget = RenderBudget::unlimited();
        let out = render_tau_pyramid(
            &mut level_ev,
            &mut full_ev,
            &raster,
            w * 0.5,
            lv.eps_s * w,
            &mut budget,
            Some(&delta),
            kernel,
        )
        .expect("render");
        assert!(out.mask.get(0, 0), "massive delta at the pixel must be hot");
    }

    #[test]
    fn zorder_levels_compose_with_the_builder_pipeline() {
        // The builder consumes the same sampler the store persists, so
        // a build → persist-parts → from_parts loop is lossless.
        let (tree, _, pyramid) = fixture();
        let parts: Vec<_> = pyramid
            .levels()
            .iter()
            .map(|lv| (lv.tree.points().clone(), lv.eps_s))
            .collect();
        assert_eq!(
            parts[0].0.len(),
            zorder_sample(tree.points(), 400, 0.25).len()
        );
        let back = Pyramid::from_parts(parts).expect("parts round-trip");
        assert_eq!(back.len(), pyramid.len());
    }
}

//! The multi-dataset catalog: lazy snapshot loads, byte-budget
//! eviction, per-dataset materialization telemetry.
//!
//! A store directory maps one file per dataset — `{name}.kdvs`
//! snapshots (preferred) or `{name}.csv` raw points (fallback, rebuilt
//! with Scott's-rule bandwidth) — onto `/tiles/{name}/…` URL space.
//! Datasets are **lazy**: the catalog scans the directory at boot
//! (milliseconds) and materializes a dataset the first time a tile
//! touches it, so a server fronting fifty city datasets boots instantly
//! and pays only for the cities anyone looks at.
//!
//! Materialization is **single-flight**: concurrent first requests for
//! one dataset elect one loader; the rest block on a condvar and share
//! the `Arc<DatasetEntry>`. A failed load resets the slot to cold —
//! errors are returned, never cached, so replacing a corrupt snapshot
//! file heals the dataset without a restart.
//!
//! Under a byte budget the catalog evicts the least-recently-touched
//! *reloadable* dataset (never the one just materialized, never a
//! preloaded single-dataset slot) and counts the eviction in
//! [`StoreCounters`], the same telemetry that feeds `/metrics`.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use kdv_core::bandwidth::try_scott_gamma_for;
use kdv_core::bounds::BoundFamily;
use kdv_core::engine::RefineEvaluator;
use kdv_core::kernel::{Kernel, KernelType};
use kdv_core::raster::RasterSpec;
use kdv_index::KdTree;
use kdv_pyramid::Pyramid;
use kdv_store::{Snapshot, StoreError};
use kdv_telemetry::json::{self, Value};
use kdv_telemetry::StoreCounters;

use crate::tile::valid_dataset_name;

/// Resolution of the per-dataset density sweep that fixes its εKDV
/// color scale (tiles of one dataset must share one normalization).
const SCALE_SWEEP_RES: u32 = 64;

/// How a dataset's tree came to exist in this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetSource {
    /// Deserialized from a KDVS snapshot.
    Snapshot,
    /// Built from raw points (CSV fallback or preloaded CLI input).
    Built,
}

impl DatasetSource {
    /// Stable string for logs and `/metrics`.
    pub fn as_str(self) -> &'static str {
        match self {
            DatasetSource::Snapshot => "snapshot",
            DatasetSource::Built => "built",
        }
    }
}

/// Everything the tile pipeline needs about one materialized dataset.
pub struct DatasetEntry {
    /// Catalog name (the `{dataset}` path segment).
    pub name: String,
    /// The QUAD index.
    pub tree: KdTree,
    /// Bandwidth-calibrated kernel shared by every tile.
    pub kernel: Kernel,
    /// Level-0 window raster.
    pub base: RasterSpec,
    /// Map-wide density range fixing the ε colormap.
    pub scale: (f64, f64),
    /// Estimated resident bytes (points + node arena), for budgeting.
    pub bytes: u64,
    /// Milliseconds spent materializing the index (snapshot read or
    /// tree build), excluding the color sweep.
    pub index_ms: u64,
    /// Milliseconds spent on the color-scale sweep.
    pub warm_ms: u64,
    /// Where the tree came from.
    pub source: DatasetSource,
    /// Highest WAL sequence number already folded into this base
    /// (`0` when the dataset predates streaming ingest). Boot-time
    /// replay skips records at or below it.
    pub applied_seq: u64,
    /// Certified coreset pyramid for low-zoom serving (empty when the
    /// snapshot carries no PYRA section). Shared so compaction can
    /// swap the ladder without cloning level trees.
    pub pyramid: Arc<Pyramid>,
}

/// Raster/sweep parameters the catalog needs to finish materializing a
/// dataset (shared by every slot; per-dataset γ comes from the file).
#[derive(Debug, Clone, Copy)]
pub struct RenderSettings {
    /// Tile edge length in pixels.
    pub tile_size: u32,
    /// Margin around the data's bounding box (fraction of axis span).
    pub margin_frac: f64,
    /// εKDV tolerance used for the color-scale sweep.
    pub eps: f64,
}

/// Rough resident-set estimate: coordinates + weights, plus the node
/// arena (MBR corners, the d+d²+d+3 moment scalars, and per-node Vec
/// headers). Budgeting needs proportionality, not exactness.
fn estimate_bytes(tree: &KdTree) -> u64 {
    let d = tree.points().dim() as u64;
    let n = tree.points().len() as u64;
    let per_node = 8 * (4 * d + d * d + 4) + 160;
    n * (d + 1) * 8 + tree.num_nodes() as u64 * per_node
}

/// Finishes a materialized tree into a [`DatasetEntry`]: level-0
/// raster, color-scale sweep, byte estimate.
pub(crate) fn finish_entry(
    name: &str,
    tree: KdTree,
    kernel: Kernel,
    settings: RenderSettings,
    index_ms: u64,
    source: DatasetSource,
) -> Result<DatasetEntry, String> {
    let base = RasterSpec::try_covering(
        tree.points(),
        settings.tile_size,
        settings.tile_size,
        settings.margin_frac,
    )
    .map_err(|e| format!("dataset {name:?}: {e}"))?;
    let warm_started = Instant::now();
    let sweep = base.with_resolution(SCALE_SWEEP_RES, SCALE_SWEEP_RES);
    let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
    let grid = kdv_viz::render::render_eps(&mut ev, &sweep, settings.eps);
    let scale = grid.min_max().unwrap_or((0.0, 1.0));
    drop(ev);
    let warm_ms = warm_started.elapsed().as_millis() as u64;
    let bytes = estimate_bytes(&tree);
    Ok(DatasetEntry {
        name: name.to_string(),
        tree,
        kernel,
        base,
        scale,
        bytes,
        index_ms,
        warm_ms,
        source,
        applied_seq: 0,
        pyramid: Arc::new(Pyramid::empty()),
    })
}

/// Loads a KDVS snapshot into an entry. Checksum or format damage
/// surfaces as the store's structured error text.
fn load_snapshot(
    name: &str,
    path: &Path,
    settings: RenderSettings,
) -> Result<DatasetEntry, (String, bool)> {
    let started = Instant::now();
    let snap = Snapshot::open(path).map_err(|e| {
        let checksum = matches!(e, StoreError::ChecksumMismatch { .. });
        (format!("dataset {name:?}: {e}"), checksum)
    })?;
    let index_ms = started.elapsed().as_millis() as u64;
    let applied_seq = snap.applied_seq;
    // Rebuild the certified ladder before the tree moves into the
    // entry: level trees come straight from the persisted coresets,
    // bounds from PYRA. A snapshot without PYRA yields an empty
    // pyramid and every tile routes to the full index.
    let pyramid = if snap.level_bounds.is_empty() {
        Pyramid::empty()
    } else {
        let parts = snap
            .coresets
            .into_iter()
            .zip(snap.level_bounds.iter().copied())
            .collect();
        Pyramid::from_parts(parts)
            .map_err(|e| (format!("dataset {name:?}: pyramid: {e}"), false))?
    };
    let mut entry = finish_entry(
        name,
        snap.tree,
        snap.kernel,
        settings,
        index_ms,
        DatasetSource::Snapshot,
    )
    .map_err(|m| (m, false))?;
    entry.applied_seq = applied_seq;
    entry.pyramid = Arc::new(pyramid);
    Ok(entry)
}

/// Builds an entry from a raw CSV (the no-snapshot fallback): 2-D
/// unweighted points, weights normalized to 1/n, Scott's-rule Gaussian
/// bandwidth — the same recipe as `kdv serve <csv>`.
fn build_csv(
    name: &str,
    path: &Path,
    settings: RenderSettings,
) -> Result<DatasetEntry, (String, bool)> {
    let started = Instant::now();
    let mut points = kdv_data::csv::load(path, 2, false)
        .map_err(|e| (format!("dataset {name:?}: {e}"), false))?;
    if points.is_empty() {
        return Err((format!("dataset {name:?}: input contains no points"), false));
    }
    kdv_data::sanitize::validate(&points).map_err(|e| (format!("dataset {name:?}: {e}"), false))?;
    let n = points.len() as f64;
    points.scale_weights(1.0 / n);
    let bw = try_scott_gamma_for(&points, KernelType::Gaussian).map_err(|e| {
        (
            format!("dataset {name:?}: Scott's rule failed ({e}); provide a snapshot instead"),
            false,
        )
    })?;
    let tree = KdTree::build_default(&points);
    let index_ms = started.elapsed().as_millis() as u64;
    finish_entry(
        name,
        tree,
        Kernel::gaussian(bw.gamma),
        settings,
        index_ms,
        DatasetSource::Built,
    )
    .map_err(|m| (m, false))
}

/// How a cold slot re-materializes. Ordered so the directory scan's
/// sort+dedup keeps a snapshot over a same-stem CSV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum SlotKind {
    /// `{name}.kdvs` on disk.
    Snapshot,
    /// `{name}.csv` on disk.
    Csv,
    /// Handed in pre-built (single-dataset mode); never evictable.
    Preloaded,
}

enum SlotState {
    Cold,
    Loading,
    Ready(Arc<DatasetEntry>),
}

struct Slot {
    name: String,
    path: PathBuf,
    kind: SlotKind,
    state: Mutex<SlotState>,
    loaded: Condvar,
    /// Catalog-clock reading of the last tile touch (for LRU eviction).
    last_access: AtomicU64,
}

/// The dataset catalog: named slots, lazy single-flight materialization,
/// byte-budget eviction.
pub struct Catalog {
    slots: Vec<Slot>,
    /// Estimated-byte budget across ready datasets; 0 = unlimited.
    budget_bytes: u64,
    counters: StoreCounters,
    clock: AtomicU64,
    settings: RenderSettings,
}

impl Catalog {
    /// Scans `dir` for `{name}.kdvs` snapshots and `{name}.csv`
    /// fallbacks (snapshot wins when both exist). Nothing is loaded
    /// yet. Errors if the directory is unreadable, holds no datasets,
    /// or a stem is not a valid dataset name.
    pub fn open(dir: &Path, budget_bytes: u64, settings: RenderSettings) -> Result<Self, String> {
        let entries = std::fs::read_dir(dir)
            .map_err(|e| format!("cannot read store directory {}: {e}", dir.display()))?;
        let mut found: Vec<(String, PathBuf, SlotKind)> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| format!("store directory scan failed: {e}"))?;
            let path = entry.path();
            if !path.is_file() {
                continue;
            }
            let kind = match path.extension().and_then(|e| e.to_str()) {
                Some(ext) if ext.eq_ignore_ascii_case(kdv_store::EXTENSION) => SlotKind::Snapshot,
                Some(ext) if ext.eq_ignore_ascii_case("csv") => SlotKind::Csv,
                _ => continue,
            };
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            if !valid_dataset_name(stem) {
                return Err(format!(
                    "store file {} has an invalid dataset name (want 1-64 chars of \
                     [A-Za-z0-9_-])",
                    path.display()
                ));
            }
            found.push((stem.to_string(), path, kind));
        }
        // Snapshot beats CSV for the same stem; sort for binary lookup.
        found.sort_by(|a, b| a.0.cmp(&b.0).then(a.2.cmp(&b.2)));
        found.dedup_by(|later, earlier| later.0 == earlier.0);
        if found.is_empty() {
            return Err(format!(
                "store directory {} holds no .{} or .csv datasets",
                dir.display(),
                kdv_store::EXTENSION
            ));
        }
        let slots = found
            .into_iter()
            .map(|(name, path, kind)| Slot {
                name,
                path,
                kind,
                state: Mutex::new(SlotState::Cold),
                loaded: Condvar::new(),
                last_access: AtomicU64::new(0),
            })
            .collect();
        Ok(Self {
            slots,
            budget_bytes,
            counters: StoreCounters::default(),
            clock: AtomicU64::new(0),
            settings,
        })
    }

    /// A one-slot catalog around a pre-built dataset (single-dataset
    /// serving: `kdv serve points.csv`). The slot is never evicted.
    pub fn single(entry: DatasetEntry) -> Self {
        let slot = Slot {
            name: entry.name.clone(),
            path: PathBuf::new(),
            kind: SlotKind::Preloaded,
            state: Mutex::new(SlotState::Ready(Arc::new(entry))),
            loaded: Condvar::new(),
            last_access: AtomicU64::new(0),
        };
        Self {
            slots: vec![slot],
            budget_bytes: 0,
            counters: StoreCounters::default(),
            clock: AtomicU64::new(0),
            settings: RenderSettings {
                tile_size: 256,
                margin_frac: 0.05,
                eps: 0.05,
            },
        }
    }

    /// Number of cataloged datasets.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the catalog is empty (never constructed that way).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Sorted dataset names.
    pub fn names(&self) -> Vec<&str> {
        self.slots.iter().map(|s| s.name.as_str()).collect()
    }

    /// Slot index for a dataset name.
    pub fn lookup(&self, name: &str) -> Option<usize> {
        self.slots
            .binary_search_by(|s| s.name.as_str().cmp(name))
            .ok()
    }

    /// The materialization telemetry shared with `/metrics`.
    pub fn counters(&self) -> &StoreCounters {
        &self.counters
    }

    /// The shared raster/sweep parameters (ingest compaction rebuilds
    /// entries with exactly the settings the catalog would use).
    pub(crate) fn settings(&self) -> RenderSettings {
        self.settings
    }

    /// The on-disk snapshot path for slot `idx`, or `None` when the
    /// slot is not snapshot-backed (CSV fallback, preloaded single
    /// dataset). Streaming ingest is only offered for snapshot slots:
    /// the WAL lives next to the `.kdvs` file and compaction rewrites
    /// it in place.
    pub(crate) fn snapshot_path(&self, idx: usize) -> Option<&Path> {
        let slot = &self.slots[idx];
        (slot.kind == SlotKind::Snapshot).then_some(slot.path.as_path())
    }

    /// Atomically swaps slot `idx` to `entry` (compaction publishing a
    /// freshly folded snapshot). Waiters blocked in [`Catalog::get`]
    /// see the new entry; readers holding the old `Arc` finish their
    /// renders against the old tree, which stays correct — the
    /// memtable delta they merge covers exactly the ops the old base
    /// is missing.
    pub(crate) fn replace(&self, idx: usize, entry: DatasetEntry) -> Arc<DatasetEntry> {
        let slot = &self.slots[idx];
        let entry = Arc::new(entry);
        let mut state = slot.state.lock().expect("catalog slot poisoned");
        *state = SlotState::Ready(Arc::clone(&entry));
        slot.loaded.notify_all();
        entry
    }

    /// Returns the dataset at `idx`, materializing it first if cold.
    /// Exactly one thread loads; the rest wait and share the result.
    /// Errors are returned to every waiter and never cached.
    pub fn get(&self, idx: usize) -> Result<Arc<DatasetEntry>, String> {
        let slot = &self.slots[idx];
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        slot.last_access.store(stamp, Ordering::Relaxed);
        let mut state = slot.state.lock().expect("catalog slot poisoned");
        loop {
            match &*state {
                SlotState::Ready(entry) => return Ok(Arc::clone(entry)),
                SlotState::Loading => {
                    state = slot.loaded.wait(state).expect("catalog slot poisoned");
                    // A failed load leaves Cold: fall through and try
                    // the load ourselves rather than spin-waiting.
                    if matches!(&*state, SlotState::Cold) {
                        break;
                    }
                }
                SlotState::Cold => break,
            }
        }
        *state = SlotState::Loading;
        drop(state);

        let started = Instant::now();
        let result = match slot.kind {
            SlotKind::Snapshot => load_snapshot(&slot.name, &slot.path, self.settings),
            SlotKind::Csv => build_csv(&slot.name, &slot.path, self.settings),
            SlotKind::Preloaded => Err((
                format!("dataset {:?} was evicted and cannot be rebuilt", slot.name),
                false,
            )),
        };
        let elapsed_ns = started.elapsed().as_nanos() as u64;

        let mut state = slot.state.lock().expect("catalog slot poisoned");
        match result {
            Ok(entry) => {
                match entry.source {
                    DatasetSource::Snapshot => self.counters.load(elapsed_ns),
                    DatasetSource::Built => self.counters.build(elapsed_ns),
                }
                let entry = Arc::new(entry);
                *state = SlotState::Ready(Arc::clone(&entry));
                slot.loaded.notify_all();
                drop(state);
                self.evict_over_budget(idx);
                Ok(entry)
            }
            Err((message, checksum)) => {
                self.counters.load_failure(checksum);
                *state = SlotState::Cold;
                slot.loaded.notify_all();
                Err(message)
            }
        }
    }

    /// Drops least-recently-touched reloadable datasets until the
    /// ready set fits the byte budget. `keep` (the slot that just
    /// loaded) is never a victim — evicting the dataset someone is
    /// actively touching would thrash.
    fn evict_over_budget(&self, keep: usize) {
        if self.budget_bytes == 0 {
            return;
        }
        loop {
            let mut total = 0u64;
            let mut victim: Option<(usize, u64, u64)> = None; // (idx, stamp, bytes)
            for (i, slot) in self.slots.iter().enumerate() {
                let Ok(state) = slot.state.try_lock() else {
                    continue; // contended slot: someone is using it
                };
                if let SlotState::Ready(entry) = &*state {
                    total += entry.bytes;
                    if i == keep || slot.kind == SlotKind::Preloaded {
                        continue;
                    }
                    let stamp = slot.last_access.load(Ordering::Relaxed);
                    if victim.is_none_or(|(_, best, _)| stamp < best) {
                        victim = Some((i, stamp, entry.bytes));
                    }
                }
            }
            if total <= self.budget_bytes {
                return;
            }
            let Some((idx, _, bytes)) = victim else {
                return; // over budget but nothing evictable
            };
            let slot = &self.slots[idx];
            let mut state = slot.state.lock().expect("catalog slot poisoned");
            if matches!(&*state, SlotState::Ready(_)) {
                *state = SlotState::Cold;
                drop(state);
                self.counters.evict(bytes);
            }
        }
    }

    /// Per-dataset catalog state for `/metrics`: name, state, source
    /// kind, and (when ready) size and materialization timings.
    pub fn status_json(&self) -> Value {
        let rows = self
            .slots
            .iter()
            .map(|slot| {
                let kind = match slot.kind {
                    SlotKind::Snapshot => "snapshot",
                    SlotKind::Csv => "csv",
                    SlotKind::Preloaded => "preloaded",
                };
                let mut fields = vec![
                    ("dataset".to_string(), Value::Str(slot.name.clone())),
                    ("kind".to_string(), Value::Str(kind.to_string())),
                ];
                let state = match slot.state.try_lock() {
                    Err(_) => "loading",
                    Ok(guard) => match &*guard {
                        SlotState::Cold => "cold",
                        SlotState::Loading => "loading",
                        SlotState::Ready(entry) => {
                            fields.push(("bytes".to_string(), json::num_u(entry.bytes)));
                            fields.push(("index_ms".to_string(), json::num_u(entry.index_ms)));
                            fields.push(("warm_ms".to_string(), json::num_u(entry.warm_ms)));
                            fields.push((
                                "source".to_string(),
                                Value::Str(entry.source.as_str().to_string()),
                            ));
                            "ready"
                        }
                    },
                };
                fields.insert(1, ("state".to_string(), Value::Str(state.to_string())));
                Value::Obj(fields)
            })
            .collect();
        Value::Arr(rows)
    }
}

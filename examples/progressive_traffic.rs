//! Progressive visualization of a traffic-accident hotspot map —
//! the paper's §6 framework: a coarse but complete color map appears
//! within milliseconds and refines continuously, so an analyst can stop
//! as soon as the picture is good enough (the paper's 0.5 s headline).
//!
//! ```text
//! cargo run --release --example progressive_traffic
//! ```

use kdv::prelude::*;
use std::path::Path;
use std::time::Duration;

fn main() {
    // A traffic-like workload: dense corridors (arterials) + junctions.
    // El nino's banded mixture is the closest emulation shape; rename
    // for the scenario.
    let raw = kdv::data::Dataset::ElNino.generate(150_000, 3);
    let bw = scott_gamma(&raw);
    let mut points = raw;
    points.scale_weights(bw.weight);
    let kernel = Kernel::gaussian(bw.gamma);
    let tree = KdTree::build_default(&points);
    let raster = RasterSpec::covering(&points, 320, 240, 0.03);

    // Ground truth for quality reporting.
    let mut quad = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
    let truth = render_eps(&mut quad, &raster, 0.01);

    println!(
        "progressive refinement ({}x{} raster):",
        raster.width(),
        raster.height()
    );
    println!(
        "{:>8} {:>10} {:>10} {:>14}",
        "t [s]", "pixels", "coverage", "avg rel error"
    );
    let cm = ColorMap::heat();
    for budget_s in [0.01, 0.05, 0.25, 0.5, 2.0] {
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let out = render_eps_progressive(
            &mut ev,
            &raster,
            0.01,
            Some(Duration::from_secs_f64(budget_s)),
        );
        let err = out.grid.mean_relative_error(&truth);
        println!(
            "{:>8} {:>10} {:>9.1}% {:>14.3e}",
            budget_s,
            out.evaluated,
            100.0 * out.evaluated as f64 / raster.num_pixels() as f64,
            err
        );
        let name = format!("progressive_t{budget_s}.ppm");
        cm.render(&out.grid, true)
            .save_ppm(Path::new(&name))
            .expect("write snapshot");
    }
    println!("\nwrote progressive_t*.ppm — flip through them to see the §6 effect");
}

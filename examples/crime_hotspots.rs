//! Crime hotspot detection with τKDV — the paper's motivating use case
//! (§1, Fig 1: motor-vehicle thefts; criminologists want the two-color
//! "is this block hot?" map, not the full density field).
//!
//! ```text
//! cargo run --release --example crime_hotspots
//! ```
//!
//! Sweeps thresholds τ = µ + k·σ like the paper's §7.2, times tKDC vs
//! KARL vs QUAD on each, and writes the two-color hotspot map for
//! τ = µ + 0.1σ.

use kdv::prelude::*;
use kdv::viz::colormap::render_binary;
use std::time::Instant;

fn main() {
    let raw = kdv::data::Dataset::Crime.generate(100_000, 7);
    let bw = scott_gamma(&raw);
    let mut points = raw;
    points.scale_weights(bw.weight);
    let kernel = Kernel::gaussian(bw.gamma);
    let tree = KdTree::build_default(&points);
    let raster = RasterSpec::covering(&points, 320, 240, 0.02);

    // µ and σ of the pixel-density distribution set the threshold scale.
    let levels = estimate_levels(&tree, kernel, &raster, 48, 36);
    println!(
        "pixel density: µ = {:.4e}, σ = {:.4e}",
        levels.mu, levels.sigma
    );

    println!(
        "\nτ sweep (full {}x{} τKDV render):",
        raster.width(),
        raster.height()
    );
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>10}",
        "k", "tKDC [s]", "KARL [s]", "QUAD [s]", "hot %"
    );
    for k in [-0.2, -0.1, 0.0, 0.1, 0.2] {
        let tau = levels.tau(k);
        let mut cells = Vec::new();
        let mut hot_frac = 0.0;
        for method in [MethodKind::Tkdc, MethodKind::Karl, MethodKind::Quad] {
            let mut ev = make_evaluator(method, &tree, kernel, "τKDV", &MethodParams::default())
                .expect("τKDV method");
            let t0 = Instant::now();
            let mask = render_tau(&mut *ev, &raster, tau);
            cells.push(t0.elapsed().as_secs_f64());
            hot_frac = mask.count_hot() as f64 / raster.num_pixels() as f64;
        }
        println!(
            "{:>+6.1} {:>12.3} {:>12.3} {:>12.3} {:>9.2}%",
            k,
            cells[0],
            cells[1],
            cells[2],
            hot_frac * 100.0
        );
    }

    // Final artifact: the two-color map at τ = µ + 0.1σ.
    let mut quad = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
    let mask = render_tau(&mut quad, &raster, levels.tau(0.1));
    render_binary(&mask)
        .save_ppm(std::path::Path::new("crime_hotspots.ppm"))
        .expect("write crime_hotspots.ppm");
    println!(
        "\nwrote crime_hotspots.ppm ({} hot pixels of {})",
        mask.count_hot(),
        raster.num_pixels()
    );
}

//! General kernel density estimation beyond 2-D visualization — the
//! paper's §7.7: reduce a 10-dimensional dataset with PCA and measure
//! εKDE query throughput as the dimensionality grows.
//!
//! ```text
//! cargo run --release --example highdim_kde
//! ```

use kdv::pca::Pca;
use kdv::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};
use std::time::Instant;

const QUERIES: usize = 200;
const EPS: f64 = 0.01;

fn main() {
    let full = kdv::data::Dataset::Hep.generate_highdim(100_000, 10, 13);
    let pca = Pca::fit(&full);
    let var = pca.explained_variance();
    println!(
        "PCA spectrum (10-d hep emulation): λ₁ = {:.3}, λ₂ = {:.3}, … λ₁₀ = {:.3}",
        var[0], var[1], var[9]
    );

    println!(
        "\n{:>3} {:>14} {:>14} {:>14}",
        "d", "SCAN [q/s]", "KARL [q/s]", "QUAD [q/s]"
    );
    for d in [2usize, 4, 6, 8, 10] {
        let mut pts = pca.transform(&full, d);
        pts.scale_weights(1.0 / pts.len() as f64);
        let kernel = Kernel::gaussian(scott_gamma(&pts).gamma);
        let tree = KdTree::build_default(&pts);

        let bbox = kdv::geom::Mbr::of_set(&pts).expect("non-empty");
        let mut rng = StdRng::seed_from_u64(d as u64);
        let queries: Vec<Vec<f64>> = (0..QUERIES)
            .map(|_| {
                (0..d)
                    .map(|j| rng.gen_range(bbox.lo()[j]..=bbox.hi()[j]))
                    .collect()
            })
            .collect();

        let mut throughputs = Vec::new();
        for method in [MethodKind::Exact, MethodKind::Karl, MethodKind::Quad] {
            let mut ev = make_evaluator(method, &tree, kernel, "εKDV", &MethodParams::default())
                .expect("Gaussian εKDV");
            let t0 = Instant::now();
            for q in &queries {
                std::hint::black_box(ev.eval_eps(q, EPS));
            }
            throughputs.push(QUERIES as f64 / t0.elapsed().as_secs_f64());
        }
        println!(
            "{:>3} {:>14.0} {:>14.0} {:>14.0}",
            d, throughputs[0], throughputs[1], throughputs[2]
        );
    }
    println!("\nExpected shape (paper Fig 24): bound-based throughput falls with d,\nbut QUAD stays ahead through d = 10.");
}

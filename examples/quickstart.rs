//! Quickstart: from points to a kernel-density color map in ~20 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a synthetic urban dataset, picks the kernel scale with
//! Scott's rule, renders an εKDV heat map with QUAD's quadratic bounds
//! (deterministic 1% error guarantee), and writes `quickstart.ppm`.

use kdv::prelude::*;
use std::time::Instant;

fn main() {
    // 1. Data. Swap in your own via `kdv::data::csv::load(path, 2, false)`.
    let points = kdv::data::Dataset::Crime.generate(50_000, 42);
    println!("dataset: {} points, {} dims", points.len(), points.dim());

    // 2. Kernel parameters via Scott's rule (γ from data spread, w = 1/n).
    let bw = scott_gamma(&points);
    let mut points = points;
    points.scale_weights(bw.weight);
    let kernel = Kernel::gaussian(bw.gamma);
    println!("Scott's rule: h = {:.5}, γ = {:.3}", bw.h, bw.gamma);

    // 3. Index once — the kd-tree carries the moment statistics that
    //    make QUAD's bounds O(d²) per node.
    let t0 = Instant::now();
    let tree = KdTree::build_default(&points);
    println!(
        "kd-tree: {} nodes, {} leaves, depth {} (built in {:.1?})",
        tree.num_nodes(),
        tree.num_leaves(),
        tree.depth(),
        t0.elapsed()
    );

    // 4. Render an εKDV density map (ε = 0.01, deterministic).
    let raster = RasterSpec::covering(&points, 320, 240, 0.03);
    let mut quad = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
    let t0 = Instant::now();
    let grid = render_eps(&mut quad, &raster, 0.01);
    println!(
        "εKDV render: {}x{} pixels in {:.2?}",
        raster.width(),
        raster.height(),
        t0.elapsed()
    );

    let (lo, hi) = grid.min_max().expect("non-empty grid");
    println!("density range: [{lo:.3e}, {hi:.3e}]");

    // 5. Color map out.
    let img = ColorMap::heat().render(&grid, true);
    img.save_ppm(std::path::Path::new("quickstart.ppm"))
        .expect("write quickstart.ppm");
    println!("wrote quickstart.ppm — open with any image viewer");
}

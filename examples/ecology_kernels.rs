//! Ecological pollution modeling with non-Gaussian kernels — the
//! paper's §5 scenario: QGIS/ArcGIS users pick triangular, cosine or
//! exponential kernels, where KARL's linear bounds don't apply but
//! QUAD's restricted quadratic bounds do.
//!
//! ```text
//! cargo run --release --example ecology_kernels
//! ```
//!
//! Renders the same sensor dataset with each kernel and compares the
//! aKDE-style interval bounds against QUAD, per kernel.

use kdv::prelude::*;
use std::path::Path;
use std::time::Instant;

fn main() {
    // Sensor-grid pollution readings: the home emulation (dense mass
    // with lobes) is the right spatial shape.
    let raw = kdv::data::Dataset::Home.generate(80_000, 11);

    println!(
        "{:>14} {:>12} {:>12} {:>9}  notes",
        "kernel", "aKDE [s]", "QUAD [s]", "speedup"
    );
    let kernels = [
        KernelType::Triangular,
        KernelType::Cosine,
        KernelType::Exponential,
        KernelType::Epanechnikov,
        KernelType::Quartic,
    ];
    for ty in kernels {
        let bw = scott_gamma_for(&raw, ty);
        let mut points = raw.clone();
        points.scale_weights(bw.weight);
        let kernel = Kernel::new(ty, bw.gamma);
        let tree = KdTree::build_default(&points);
        let raster = RasterSpec::covering(&points, 160, 120, 0.03);

        let mut akde = RefineEvaluator::new(&tree, kernel, BoundFamily::Interval);
        let t0 = Instant::now();
        let grid_a = render_eps(&mut akde, &raster, 0.01);
        let t_akde = t0.elapsed().as_secs_f64();

        let mut quad = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let t0 = Instant::now();
        let grid_q = render_eps(&mut quad, &raster, 0.01);
        let t_quad = t0.elapsed().as_secs_f64();

        // Both carry the deterministic ε guarantee, so they agree.
        let diff = grid_q.mean_relative_error(&grid_a);
        let note = match ty {
            KernelType::Epanechnikov | KernelType::Quartic => "extension: exact inside support",
            _ => "paper §5 kernel",
        };
        println!(
            "{:>14} {:>12.3} {:>12.3} {:>8.1}x  {} (grids agree to {:.1e})",
            ty.name(),
            t_akde,
            t_quad,
            t_akde / t_quad.max(1e-12),
            note,
            diff
        );

        let name = format!("ecology_{}.ppm", ty.name());
        ColorMap::heat()
            .render(&grid_q, true)
            .save_ppm(Path::new(&name))
            .expect("write map");
    }
    println!("\nwrote ecology_<kernel>.ppm maps");
}

//! Kernel regression on QUAD bounds — the paper's §8 future work.
//!
//! ```text
//! cargo run --release --example kernel_regression
//! ```
//!
//! Fits a Nadaraya–Watson regressor to noisy samples of a 2-D surface
//! and predicts along a slice with certified error intervals, comparing
//! the quadratic-bound model against the interval-bound ablation.

use kdv::core::regress::KernelRegression;
use kdv::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};
use std::time::Instant;

fn surface(x: f64, y: f64) -> f64 {
    (2.0 * x).sin() * 3.0 + y * y - 1.0
}

fn main() {
    // Noisy samples of the surface.
    let mut rng = StdRng::seed_from_u64(99);
    let mut xs = PointSet::new(2);
    let mut ys = Vec::new();
    for _ in 0..60_000 {
        let a = rng.gen_range(-2.0..2.0);
        let b = rng.gen_range(-2.0..2.0);
        xs.push(&[a, b]);
        ys.push(surface(a, b) + rng.gen_range(-0.1..0.1));
    }

    let kernel = Kernel::gaussian(120.0);
    let t0 = Instant::now();
    let model = KernelRegression::fit(&xs, &ys, kernel);
    println!("fitted 60k-sample model in {:.1?}", t0.elapsed());

    let mut predictor = model.predictor();
    println!(
        "\nslice y = 0.5 (certified ε = 1% intervals):\n{:>6} {:>10} {:>22} {:>10}",
        "x", "truth", "prediction [lo, hi]", "abs err"
    );
    let t0 = Instant::now();
    let mut count = 0usize;
    for i in 0..9 {
        let x = -2.0 + 0.5 * i as f64;
        let q = [x, 0.5];
        let truth = surface(x, 0.5);
        if let Some(p) = predictor.predict(&q, 0.01) {
            count += 1;
            println!(
                "{:>6.2} {:>10.4} [{:>9.4}, {:>9.4}] {:>10.4}",
                x,
                truth,
                p.lo,
                p.hi,
                (p.value - truth).abs()
            );
        }
    }
    println!("\n{count} predictions in {:.1?} total", t0.elapsed());

    // Throughput comparison: quadratic vs interval bound families.
    use kdv::index::BuildConfig;
    let interval_model = KernelRegression::fit_with(
        &xs,
        &ys,
        kernel,
        BoundFamily::Interval,
        BuildConfig::default(),
    );
    for (name, m) in [("QUAD", &model), ("interval", &interval_model)] {
        let mut p = m.predictor();
        let t0 = Instant::now();
        let mut n = 0usize;
        for i in 0..200 {
            let x = -2.0 + 4.0 * (i as f64 / 200.0);
            if p.predict(&[x, -0.25], 0.01).is_some() {
                n += 1;
            }
        }
        println!(
            "{name:>9} bounds: {n} predictions in {:.1?} ({:.0} pred/s)",
            t0.elapsed(),
            n as f64 / t0.elapsed().as_secs_f64()
        );
    }
}

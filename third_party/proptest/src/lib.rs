//! Offline stand-in for the subset of `proptest 1.x` this workspace
//! uses: the `proptest!` test macro, `prop_assert!`/`prop_assert_eq!`,
//! range and tuple strategies, `collection::vec`, `prop_map`, and
//! `ProptestConfig::with_cases`.
//!
//! Cases are sampled uniformly from each strategy with a deterministic
//! per-test seed (an FNV hash of the test's module path and name), so
//! runs are reproducible. There is **no shrinking**: a failing case
//! panics with the assertion message as-is. See `third_party/README.md`.

#![forbid(unsafe_code)]

#[doc(hidden)]
pub use rand as __rand;

/// Test-case plumbing: the error type `prop_assert!` returns and the
/// run configuration.
pub mod test_runner {
    /// A failed test case, carrying the assertion message.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// One test case's outcome.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration. Only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test (default 256).
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl Config {
        /// The default configuration with `cases` overridden.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }
}

/// The [`Strategy`] trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng as _;
    use std::ops::Range;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value: std::fmt::Debug;

        /// One uniformly sampled value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// A strategy producing `f` of this strategy's values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: std::fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: std::fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F2);
}

/// Collection strategies (`vec`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng as _;
    use std::ops::Range;

    /// Admissible lengths for a generated collection: either an exact
    /// size or a half-open range, mirroring upstream's conversions.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector strategy: each element from `element`, length from
    /// `size` (a `usize` for exact, a `Range<usize>` for half-open).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.min + 1 == self.size.max_exclusive {
                self.size.min
            } else {
                rng.gen_range(self.size.min..self.size.max_exclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `use proptest::prelude::*;` convenience re-exports.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. Supports an optional leading
/// `#![proptest_config(...)]`; each case runs the body as a
/// `Result`-returning closure so `prop_assert!` and `return Ok(())`
/// work as upstream.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            // Deterministic per-test seed: FNV-1a of the full test path.
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in concat!(module_path!(), "::", stringify!($name)).bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1_0000_0000_01b3);
            }
            let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(seed);
            for case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                // Render inputs up front: the body may consume them.
                let inputs =
                    [$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", ");
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} of {} failed: {}\n  inputs: {}",
                        case + 1,
                        cfg.cases,
                        stringify!($name),
                        e,
                        inputs,
                    );
                }
            }
        }
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (not unwinding) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -3.0..3.0f64, n in 1usize..9) {
            prop_assert!((-3.0..3.0).contains(&x), "x out of range: {x}");
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            rows in crate::collection::vec((0.0..1.0f64, 0u32..4), 2..7),
        ) {
            prop_assert!((2..7).contains(&rows.len()));
            for (f, u) in rows {
                prop_assert!((0.0..1.0).contains(&f));
                prop_assert!(u < 4);
            }
        }

        #[test]
        fn prop_map_transforms(v in crate::collection::vec(0.0..1.0f64, 4).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 4);
        }
    }

    #[test]
    fn failing_case_panics_with_inputs() {
        let caught = std::panic::catch_unwind(|| {
            proptest! {
                #[test]
                fn always_fails(x in 0..10u32) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            always_fails();
        });
        let msg = *caught
            .unwrap_err()
            .downcast::<String>()
            .expect("string panic");
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("x = "), "{msg}");
    }

    #[test]
    fn seeds_are_stable_across_runs() {
        use rand::{Rng as _, SeedableRng as _};
        let mut a = rand::rngs::StdRng::seed_from_u64(5);
        let mut b = rand::rngs::StdRng::seed_from_u64(5);
        let sa: Vec<f64> = (0..4).map(|_| a.gen_range(0.0..1.0)).collect();
        let sb: Vec<f64> = (0..4).map(|_| b.gen_range(0.0..1.0)).collect();
        assert_eq!(sa, sb);
    }
}

//! Offline stand-in for the subset of `criterion 0.5` this workspace
//! uses: `Criterion`, benchmark groups, `bench_function` /
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Each benchmark is timed over a small fixed batch of iterations and
//! reported as one `name ... mean per-iter` line on stdout; there is
//! no warm-up calibration, statistical analysis, or HTML report. See
//! `third_party/README.md`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Iterations timed per benchmark (after one untimed warm-up call).
const TIMED_ITERS: u32 = 10;

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// A named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Times `f` as a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{id}"), &mut f);
        self
    }
}

/// A named collection of benchmarks sharing a prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's iteration count is
    /// fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Times `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Times `f` with a borrowed input under `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.id), &mut |b| f(b, input));
        self
    }

    /// Ends the group (a no-op here; upstream flushes reports).
    pub fn finish(self) {}
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { total_ns: 0.0 };
    f(&mut b); // warm-up; also the only shot at lazy initialization
    b.total_ns = 0.0;
    f(&mut b);
    println!("bench {label:<56} {:>12.0} ns/iter", b.total_ns);
}

/// Passed to every benchmark closure; times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    total_ns: f64,
}

impl Bencher {
    /// Times `routine` over a fixed batch, recording mean ns/iter.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..TIMED_ITERS {
            black_box(routine());
        }
        self.total_ns = start.elapsed().as_nanos() as f64 / f64::from(TIMED_ITERS);
    }
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: format!("{parameter}"),
        }
    }
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// The `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_render_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(10);
        let mut runs = 0u32;
        group.bench_function("inline", |b| {
            b.iter(|| black_box(2 + 2));
            runs += 1;
        });
        group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 3));
        });
        group.finish();
        c.bench_function(BenchmarkId::from_parameter("top").id, |b| b.iter(|| ()));
        assert_eq!(runs, 2);
    }
}

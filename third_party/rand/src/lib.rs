//! Offline stand-in for the subset of `rand 0.8` this workspace uses.
//!
//! See `third_party/README.md` for scope and caveats. The one
//! behavioral difference from upstream: [`rngs::StdRng`] is a
//! SplitMix64 generator, not ChaCha12, so seeded streams differ from
//! real `rand` (workspace tests are self-consistent under any
//! fixed-seed generator).

#![forbid(unsafe_code)]

/// Low-level source of random bits.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, SR>(&mut self, range: SR) -> T
    where
        SR: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// A generator deterministically derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// `u64` bits → uniform `f64` in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64. Fast, passes
    /// casual statistical muster, and — unlike upstream's ChaCha12 —
    /// trivially dependency-free.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

/// Distribution sampling.
pub mod distributions {
    use super::Rng;

    /// A sampleable distribution over `T`.
    pub trait Distribution<T> {
        /// One sample using `rng`.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Range sampling machinery backing [`Rng::gen_range`].
    pub mod uniform {
        use crate::{unit_f64, Rng, RngCore};
        use std::ops::{Range, RangeInclusive};

        /// A range that can produce one uniform sample of `T`.
        pub trait SampleRange<T> {
            /// One uniform sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "empty f64 range");
                let u = unit_f64(rng.next_u64());
                let v = self.start + (self.end - self.start) * u;
                // Floating rounding may land on `end`; fold back inside.
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }

        impl SampleRange<f64> for RangeInclusive<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty f64 range");
                lo + (hi - lo) * unit_f64(rng.next_u64())
            }
        }

        impl SampleRange<f32> for Range<f32> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
                let v = (self.start as f64..self.end as f64).sample_single(rng) as f32;
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }

        /// Lemire-style unbiased bounded sampling on u64, by rejection.
        fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Rejection zone keeps the modulo unbiased.
            let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
            loop {
                let v = rng.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }

        macro_rules! int_sample_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty integer range");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        let off = bounded_u64(rng, span);
                        (self.start as i128 + off as i128) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty integer range");
                        let span = (hi as i128 - lo as i128) as u64;
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        let off = bounded_u64(rng, span + 1);
                        (lo as i128 + off as i128) as $t
                    }
                }
            )*};
        }

        int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        // Silence "unused" when only a subset of impls is exercised.
        const _: fn(&mut crate::rngs::StdRng) -> u64 = |r| r.gen_range(0..10u64);
    }
}

/// `use rand::prelude::*;` convenience re-exports.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2_000 {
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f), "{f}");
            let i = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&i), "{i}");
            let u = rng.gen_range(0..7usize);
            assert!(u < 7, "{u}");
        }
    }

    #[test]
    fn small_int_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0) || true));
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_dyn(rng: &mut dyn crate::RngCore) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let r = &mut rng;
        let _ = r.gen_range(0.0..1.0f64);
        let _ = takes_dyn(&mut rng);
    }
}

//! User-data pipeline: CSV in → render → image out, the path a
//! downstream adopter actually takes.

use kdv::data::csv;
use kdv::data::Dataset;
use kdv::prelude::*;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("kdv_csv_pipeline");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name)
}

#[test]
fn csv_roundtrip_preserves_render() {
    let raw = Dataset::ElNino.generate(2000, 51);
    let bw = scott_gamma(&raw);
    let mut points = raw;
    points.scale_weights(bw.weight);
    let kernel = Kernel::gaussian(bw.gamma);

    // Save with weights, load back, render both, compare exactly.
    let path = tmp("elnino.csv");
    csv::save(&path, &points, true).expect("save CSV");
    let loaded = csv::load(&path, 2, true).expect("load CSV");
    assert_eq!(loaded.len(), points.len());

    let raster = RasterSpec::covering(&points, 16, 12, 0.02);
    let tree_a = KdTree::build_default(&points);
    let tree_b = KdTree::build_default(&loaded);
    let mut ev_a = RefineEvaluator::new(&tree_a, kernel, BoundFamily::Quadratic);
    let mut ev_b = RefineEvaluator::new(&tree_b, kernel, BoundFamily::Quadratic);
    let grid_a = render_eps(&mut ev_a, &raster, 0.01);
    let grid_b = render_eps(&mut ev_b, &raster, 0.01);
    // CSV text serialization may round the last ulp of coordinates; the
    // renders must agree far below the ε tolerance.
    assert!(grid_a.mean_relative_error(&grid_b) < 1e-6);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn image_artifacts_are_written_and_valid() {
    let raw = Dataset::Crime.generate(1500, 53);
    let bw = scott_gamma(&raw);
    let mut points = raw;
    points.scale_weights(bw.weight);
    let kernel = Kernel::gaussian(bw.gamma);
    let tree = KdTree::build_default(&points);
    let raster = RasterSpec::covering(&points, 24, 18, 0.02);
    let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
    let grid = render_eps(&mut ev, &raster, 0.02);

    let img = ColorMap::heat().render(&grid, true);
    let ppm_path = tmp("crime.ppm");
    img.save_ppm(&ppm_path).expect("save PPM");
    let bytes = std::fs::read(&ppm_path).expect("read back");
    assert!(bytes.starts_with(b"P6\n24 18\n255\n"));
    assert_eq!(bytes.len(), 13 + 24 * 18 * 3);
    let _ = std::fs::remove_file(&ppm_path);
}

//! The §7.7 pipeline end-to-end: high-dimensional emulation → PCA →
//! KDE queries at every dimensionality, with the ε contract intact.

use kdv::data::Dataset;
use kdv::geom::vecmath::dist2;
use kdv::pca::Pca;
use kdv::prelude::*;

#[test]
fn eps_contract_holds_at_every_dimensionality() {
    let full = Dataset::Home.generate_highdim(4000, 10, 31);
    let pca = Pca::fit(&full);
    for d in [2usize, 4, 6, 8, 10] {
        let mut pts = pca.transform(&full, d);
        pts.scale_weights(1.0 / pts.len() as f64);
        let kernel = Kernel::gaussian(scott_gamma(&pts).gamma);
        let tree = KdTree::build_default(&pts);
        let mut quad = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut karl = RefineEvaluator::new(&tree, kernel, BoundFamily::Linear);

        // Probe a few query points, including the data mean.
        let mean = pts.mean().expect("non-empty");
        let mut queries = vec![mean.clone()];
        queries.push(pts.point(7).to_vec());
        queries.push(mean.iter().map(|m| m + 1.0).collect());

        for q in &queries {
            let f: f64 = pts
                .iter()
                .map(|p| p.weight * kernel.eval_dist2(dist2(q, p.coords)))
                .sum();
            for (name, ev) in [("QUAD", &mut quad), ("KARL", &mut karl)] {
                let r = ev.eval_eps(q, 0.01);
                assert!(
                    (r - f).abs() <= 0.01 * f + 1e-12,
                    "{name} at d = {d}: {r} vs exact {f}"
                );
            }
        }
    }
}

#[test]
fn pca_spectrum_decays_on_correlated_emulation() {
    let full = Dataset::Hep.generate_highdim(8000, 10, 37);
    let pca = Pca::fit(&full);
    let var = pca.explained_variance();
    // The extra axes are correlated responses: the top components must
    // dominate the tail (a meaningful reduction target for Fig 24).
    let head: f64 = var[..4].iter().sum();
    let tail: f64 = var[4..].iter().sum();
    assert!(
        head > tail,
        "expected a decaying spectrum, got head {head} vs tail {tail}"
    );
    // And the eigenvalues are sorted.
    for w in var.windows(2) {
        assert!(w[0] >= w[1] - 1e-12);
    }
}

#[test]
fn reduced_dimensions_preserve_cluster_separation() {
    // The two hep classes stay separated after 10 → 2 reduction: KDE at
    // a class center is much higher than far outside the data.
    let full = Dataset::Hep.generate_highdim(6000, 10, 41);
    let pca = Pca::fit(&full);
    let mut pts = pca.transform(&full, 2);
    pts.scale_weights(1.0 / pts.len() as f64);
    let kernel = Kernel::gaussian(scott_gamma(&pts).gamma);
    let tree = KdTree::build_default(&pts);
    let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);

    let mean = pts.mean().expect("non-empty");
    let f_center = ev.eval_eps(&mean, 0.01);
    let bbox = kdv::geom::Mbr::of_set(&pts).expect("non-empty");
    let far = [bbox.hi()[0] * 2.0, bbox.hi()[1] * 2.0];
    let f_far = ev.eval_eps(&far, 0.5).max(1e-300);
    assert!(
        f_center > 10.0 * f_far,
        "density contrast lost after PCA: center {f_center} vs far {f_far}"
    );
}

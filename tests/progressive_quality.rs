//! Progressive-framework quality invariants across crates (paper §6,
//! Figs 20–21).

use kdv::data::Dataset;
use kdv::prelude::*;
use kdv::viz::progressive::progressive_order;
use kdv::viz::render::ProgressiveCanvas;

fn setup(n: usize) -> (PointSet, Kernel, RasterSpec) {
    let raw = Dataset::Home.generate(n, 5);
    let bw = scott_gamma(&raw);
    let mut points = raw;
    points.scale_weights(bw.weight);
    let kernel = Kernel::gaussian(bw.gamma);
    let raster = RasterSpec::covering(&points, 32, 24, 0.02);
    (points, kernel, raster)
}

#[test]
fn error_is_monotone_in_prefix_length_on_average() {
    let (points, kernel, raster) = setup(4000);
    let tree = KdTree::build_default(&points);
    let mut exact = ExactScan::new(&points, kernel);
    let truth = render_eps(&mut exact, &raster, 0.01);

    let steps = progressive_order(raster.width(), raster.height());
    let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
    let mut canvas = ProgressiveCanvas::new(raster.width(), raster.height());
    let mut errors = Vec::new();
    let checkpoints = [1usize, 5, 21, 85, steps.len()];
    let mut next_cp = 0;
    for (i, step) in steps.iter().enumerate() {
        let q = raster.pixel_center(step.col, step.row);
        let v = ev.eval_eps(&q, 0.01);
        canvas.apply(step, v);
        if next_cp < checkpoints.len() && i + 1 == checkpoints[next_cp] {
            errors.push(canvas.grid().mean_relative_error(&truth));
            next_cp += 1;
        }
    }
    // Quad-tree checkpoint errors fall overall (allow small local noise
    // between adjacent levels, demand a big drop overall).
    assert!(
        errors.last().expect("non-empty") <= &0.01,
        "full prefix must meet ε: {errors:?}"
    );
    assert!(
        errors[0] > errors[errors.len() - 1],
        "error must decrease from first to last checkpoint: {errors:?}"
    );
}

#[test]
fn every_prefix_paints_the_full_raster() {
    let (points, kernel, raster) = setup(1500);
    let tree = KdTree::build_default(&points);
    let steps = progressive_order(raster.width(), raster.height());
    let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
    let mut canvas = ProgressiveCanvas::new(raster.width(), raster.height());
    for (i, step) in steps.iter().enumerate() {
        let q = raster.pixel_center(step.col, step.row);
        canvas.apply(step, ev.eval_eps(&q, 0.05));
        if i == 0 {
            // After the very first step the whole grid holds that value.
            let v0 = canvas.grid().get(step.col, step.row);
            assert!(canvas.grid().values().iter().all(|&v| v == v0));
        }
    }
    // Finished canvas has strictly positive densities for this data.
    assert!(canvas.grid().values().iter().all(|&v| v >= 0.0));
}

#[test]
fn coarse_prefix_already_locates_the_hotspot() {
    // The §6 pitch: after a small prefix, the argmax of the painted
    // grid should be near the argmax of the exact grid.
    let (points, kernel, raster) = setup(6000);
    let tree = KdTree::build_default(&points);
    let mut exact = ExactScan::new(&points, kernel);
    let truth = render_eps(&mut exact, &raster, 0.01);

    let steps = progressive_order(raster.width(), raster.height());
    let prefix = steps.len() / 16; // ~6% of pixels
    let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
    let mut canvas = ProgressiveCanvas::new(raster.width(), raster.height());
    for step in &steps[..prefix] {
        let q = raster.pixel_center(step.col, step.row);
        canvas.apply(step, ev.eval_eps(&q, 0.01));
    }

    let argmax = |g: &DensityGrid| -> (u32, u32) {
        let mut best = (0, 0);
        let mut best_v = f64::NEG_INFINITY;
        for row in 0..g.height() {
            for col in 0..g.width() {
                if g.get(col, row) > best_v {
                    best_v = g.get(col, row);
                    best = (col, row);
                }
            }
        }
        best
    };
    let (tc, tr) = argmax(&truth);
    let (pc, pr) = argmax(canvas.grid());
    let dist = ((tc as f64 - pc as f64).powi(2) + (tr as f64 - pr as f64).powi(2)).sqrt();
    assert!(
        dist <= 8.0,
        "coarse hotspot ({pc},{pr}) too far from exact ({tc},{tr})"
    );
}

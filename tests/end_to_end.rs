//! End-to-end εKDV/τKDV agreement: every method with a deterministic
//! guarantee must produce full renders within tolerance of EXACT on
//! every emulated dataset.

use kdv::data::Dataset;
use kdv::prelude::*;

fn workload(ds: Dataset, n: usize, ty: KernelType) -> (PointSet, Kernel) {
    let raw = ds.generate(n, 99);
    let bw = scott_gamma_for(&raw, ty);
    let mut points = raw;
    points.scale_weights(bw.weight);
    (points, Kernel::new(ty, bw.gamma))
}

#[test]
fn eps_kdv_methods_meet_guarantee_on_all_datasets() {
    let eps = 0.01;
    for ds in Dataset::ALL {
        let (points, kernel) = workload(ds, 3000, KernelType::Gaussian);
        let tree = KdTree::build_default(&points);
        let raster = RasterSpec::covering(&points, 20, 16, 0.02);

        let mut exact = ExactScan::new(&points, kernel);
        let truth = render_eps(&mut exact, &raster, eps);

        for m in [
            MethodKind::Scikit,
            MethodKind::Akde,
            MethodKind::Karl,
            MethodKind::Quad,
        ] {
            let mut ev = make_evaluator(m, &tree, kernel, "εKDV", &MethodParams::default())
                .expect("εKDV method");
            let grid = render_eps(&mut *ev, &raster, eps);
            // Per-pixel deterministic guarantee, not just on average.
            for row in 0..raster.height() {
                for col in 0..raster.width() {
                    let f = truth.get(col, row);
                    let r = grid.get(col, row);
                    assert!(
                        (r - f).abs() <= eps * f + 1e-12,
                        "{ds:?}/{m:?}: pixel ({col},{row}) {r} vs {f}"
                    );
                }
            }
        }
    }
}

#[test]
fn tau_kdv_methods_agree_with_exact_on_all_datasets() {
    for ds in Dataset::ALL {
        let (points, kernel) = workload(ds, 3000, KernelType::Gaussian);
        let tree = KdTree::build_default(&points);
        let raster = RasterSpec::covering(&points, 20, 16, 0.02);
        let levels = estimate_levels(&tree, kernel, &raster, 10, 8);
        let tau = levels.tau(0.1);

        let mut exact = ExactScan::new(&points, kernel);
        let truth = render_tau(&mut exact, &raster, tau);
        for m in [MethodKind::Tkdc, MethodKind::Karl, MethodKind::Quad] {
            let mut ev = make_evaluator(m, &tree, kernel, "τKDV", &MethodParams::default())
                .expect("τKDV method");
            let mask = render_tau(&mut *ev, &raster, tau);
            // Disagreement only possible on pixels where F(q) ≈ τ to
            // rounding; a mid-sweep τ should have none on a small grid.
            assert!(
                mask.disagreement(&truth) <= 0.01,
                "{ds:?}/{m:?}: τ mask disagrees beyond boundary noise"
            );
        }
    }
}

#[test]
fn distance_kernels_end_to_end_with_quad() {
    let eps = 0.02;
    for ty in [
        KernelType::Triangular,
        KernelType::Cosine,
        KernelType::Exponential,
        KernelType::Epanechnikov,
        KernelType::Quartic,
    ] {
        let (points, kernel) = workload(Dataset::Crime, 2500, ty);
        let tree = KdTree::build_default(&points);
        let raster = RasterSpec::covering(&points, 16, 12, 0.02);
        let mut exact = ExactScan::new(&points, kernel);
        let truth = render_eps(&mut exact, &raster, eps);
        let mut quad = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let grid = render_eps(&mut quad, &raster, eps);
        for (r, f) in grid.values().iter().zip(truth.values()) {
            assert!(
                (r - f).abs() <= eps * f + 1e-12,
                "{ty:?}: {r} vs {f} breaks the ε contract"
            );
        }
    }
}

#[test]
fn quad_prunes_vs_interval_on_clustered_data() {
    // Sanity on the paper's performance *mechanism* (not wall-clock):
    // QUAD must refine fewer nodes than interval bounds on a clustered
    // dataset at tight ε.
    let (points, kernel) = workload(Dataset::Crime, 20_000, KernelType::Gaussian);
    let tree = KdTree::build_default(&points);
    let raster = RasterSpec::covering(&points, 8, 6, 0.02);

    let mut total_quad = 0usize;
    let mut total_interval = 0usize;
    let mut quad = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
    let mut interval = RefineEvaluator::new(&tree, kernel, BoundFamily::Interval);
    for row in 0..raster.height() {
        for col in 0..raster.width() {
            let q = raster.pixel_center(col, row);
            quad.eval_eps(&q, 0.01);
            total_quad += quad.last_stats().iterations;
            interval.eval_eps(&q, 0.01);
            total_interval += interval.last_stats().iterations;
        }
    }
    assert!(
        (total_quad as f64) < 0.8 * total_interval as f64,
        "QUAD iterations {total_quad} not clearly below interval {total_interval}"
    );
}

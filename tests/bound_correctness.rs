//! Cross-crate bound-correctness: for every kernel × bound family, the
//! node bounds computed on *real kd-tree nodes* must bracket the exact
//! per-node aggregation, and the paper's tightness ordering must hold.

use kdv::core::bounds::{node_bounds, BoundFamily};
use kdv::geom::vecmath::dist2;
use kdv::index::BuildConfig;
use kdv::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

fn random_points(n: usize, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let flat: Vec<f64> = (0..n * 2).map(|_| rng.gen_range(-10.0..10.0)).collect();
    PointSet::from_rows(2, &flat)
}

fn exact_node(tree: &KdTree, id: kdv::index::NodeId, kernel: &Kernel, q: &[f64]) -> f64 {
    match tree.node(id).kind {
        kdv::index::NodeKind::Leaf { .. } => tree
            .leaf_points(id)
            .map(|(p, w)| w * kernel.eval_dist2(dist2(q, p)))
            .sum(),
        kdv::index::NodeKind::Internal { left, right } => {
            exact_node(tree, left, kernel, q) + exact_node(tree, right, kernel, q)
        }
    }
}

#[test]
fn every_node_bound_brackets_exact_for_all_kernels_and_families() {
    let ps = random_points(600, 1);
    let tree = KdTree::build(
        &ps,
        BuildConfig {
            leaf_capacity: 8,
            ..BuildConfig::default()
        },
    );
    let queries = [[0.0, 0.0], [4.0, -7.0], [15.0, 15.0], [-2.0, 0.5]];
    for ty in KernelType::ALL {
        let kernel = Kernel::new(ty, 0.25);
        for family in BoundFamily::ALL {
            for q in &queries {
                tree.for_each_node(|id, node| {
                    let b = node_bounds(&kernel, family, &node.stats, &node.mbr, q);
                    let f = exact_node(&tree, id, &kernel, q);
                    let tol = 1e-8 * (1.0 + f.abs());
                    assert!(
                        b.lb <= f + tol,
                        "{ty:?}/{family:?}: node lb {} > exact {f}",
                        b.lb
                    );
                    assert!(
                        f <= b.ub + tol,
                        "{ty:?}/{family:?}: exact {f} > node ub {}",
                        b.ub
                    );
                });
            }
        }
    }
}

#[test]
fn gaussian_tightness_ordering_quad_karl_interval() {
    let ps = random_points(600, 2);
    let tree = KdTree::build(
        &ps,
        BuildConfig {
            leaf_capacity: 8,
            ..BuildConfig::default()
        },
    );
    let kernel = Kernel::gaussian(0.1);
    for q in [[0.0, 0.0], [8.0, 8.0], [-5.0, 3.0]] {
        tree.for_each_node(|_, node| {
            let bi = node_bounds(&kernel, BoundFamily::Interval, &node.stats, &node.mbr, &q);
            let bl = node_bounds(&kernel, BoundFamily::Linear, &node.stats, &node.mbr, &q);
            let bq = node_bounds(&kernel, BoundFamily::Quadratic, &node.stats, &node.mbr, &q);
            let tol = 1e-9 * (1.0 + bi.ub.abs());
            assert!(bl.gap() <= bi.gap() + tol, "KARL looser than interval");
            assert!(bq.gap() <= bl.gap() + tol, "QUAD looser than KARL");
        });
    }
}

#[test]
fn distance_kernel_quad_tighter_than_interval() {
    let ps = random_points(600, 3);
    let tree = KdTree::build(
        &ps,
        BuildConfig {
            leaf_capacity: 8,
            ..BuildConfig::default()
        },
    );
    for ty in [
        KernelType::Triangular,
        KernelType::Cosine,
        KernelType::Exponential,
    ] {
        let kernel = Kernel::new(ty, 0.15);
        for q in [[0.0, 0.0], [6.0, -6.0]] {
            tree.for_each_node(|_, node| {
                let bi = node_bounds(&kernel, BoundFamily::Interval, &node.stats, &node.mbr, &q);
                let bq = node_bounds(&kernel, BoundFamily::Quadratic, &node.stats, &node.mbr, &q);
                let tol = 1e-9 * (1.0 + bi.ub.abs());
                assert!(
                    bq.gap() <= bi.gap() + tol,
                    "{ty:?}: QUAD gap {} > interval gap {}",
                    bq.gap(),
                    bi.gap()
                );
            });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Root-node bounds bracket the full KDE for arbitrary weighted
    /// datasets, all kernels, quadratic family (the paper's method).
    #[test]
    fn root_bounds_bracket_weighted_kde(
        rows in proptest::collection::vec(
            (proptest::collection::vec(-8.0..8.0f64, 2), 0.01..3.0f64), 4..60),
        q in proptest::collection::vec(-10.0..10.0f64, 2),
        gamma in 0.02..1.0f64,
        ty_idx in 0usize..6,
    ) {
        let mut ps = PointSet::new(2);
        for (p, w) in &rows {
            ps.push_weighted(p, *w);
        }
        let tree = KdTree::build(&ps, BuildConfig { leaf_capacity: 4, ..BuildConfig::default() });
        let kernel = Kernel::new(KernelType::ALL[ty_idx], gamma);
        let root = tree.node(tree.root());
        let b = node_bounds(&kernel, BoundFamily::Quadratic, &root.stats, &root.mbr, &q);
        let f: f64 = ps
            .iter()
            .map(|p| p.weight * kernel.eval_dist2(dist2(&q, p.coords)))
            .sum();
        let tol = 1e-8 * (1.0 + f.abs());
        prop_assert!(b.lb <= f + tol, "lb {} > F {}", b.lb, f);
        prop_assert!(f <= b.ub + tol, "F {} > ub {}", f, b.ub);
    }
}

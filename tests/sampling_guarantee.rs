//! The Z-Order baseline's probabilistic guarantee, measured: over many
//! independent phases, the normalized KDE error of the coreset stays
//! within the Hoeffding budget at well above the promised rate.

use kdv::data::Dataset;
use kdv::geom::vecmath::dist2;
use kdv::prelude::*;
use kdv::sampling::{sample_size_for, zorder_sample};

fn kde(points: &PointSet, kernel: &Kernel, q: &[f64]) -> f64 {
    points
        .iter()
        .map(|p| p.weight * kernel.eval_dist2(dist2(q, p.coords)))
        .sum()
}

#[test]
fn normalized_error_within_eps_at_promised_rate() {
    let points = Dataset::Crime.generate(30_000, 17);
    let kernel = Kernel::gaussian(scott_gamma(&points).gamma);
    let w_total = points.total_weight();
    let raster = RasterSpec::covering(&points, 8, 8, 0.02);

    let (eps, delta) = (0.05, 0.2);
    let size = sample_size_for(eps, delta);
    let trials = 20;
    let mut violations = 0usize;
    let mut checks = 0usize;
    for t in 0..trials {
        let phase = t as f64 / trials as f64;
        let sample = zorder_sample(&points, size, phase);
        for row in 0..raster.height() {
            for col in 0..raster.width() {
                let q = raster.pixel_center(col, row);
                let err = (kde(&sample, &kernel, &q) - kde(&points, &kernel, &q)).abs() / w_total;
                checks += 1;
                if err > eps {
                    violations += 1;
                }
            }
        }
    }
    let rate = violations as f64 / checks as f64;
    assert!(
        rate <= delta,
        "violation rate {rate} exceeds δ = {delta} ({violations}/{checks})"
    );
}

#[test]
fn stratified_beats_worst_case_budget_comfortably() {
    // Z-order stratification should leave lots of headroom versus the
    // Hoeffding bound on clustered data: max error well below ε.
    let points = Dataset::Crime.generate(20_000, 23);
    let kernel = Kernel::gaussian(scott_gamma(&points).gamma);
    let w_total = points.total_weight();
    let (eps, delta) = (0.1, 0.2);
    let sample = zorder_sample(&points, sample_size_for(eps, delta), 0.37);
    let raster = RasterSpec::covering(&points, 6, 6, 0.02);
    let mut max_err: f64 = 0.0;
    for row in 0..raster.height() {
        for col in 0..raster.width() {
            let q = raster.pixel_center(col, row);
            let err = (kde(&sample, &kernel, &q) - kde(&points, &kernel, &q)).abs() / w_total;
            max_err = max_err.max(err);
        }
    }
    assert!(
        max_err < eps / 2.0,
        "stratified max error {max_err} should sit well under ε = {eps}"
    );
}

#[test]
fn zorder_method_is_faster_than_exact_but_approximate() {
    // The method trade-off the paper plots: same interface, smaller scan.
    let points = Dataset::Hep.generate(50_000, 29);
    let kernel = Kernel::gaussian(scott_gamma(&points).gamma);
    let tree = KdTree::build_default(&points);
    let params = MethodParams {
        zorder_eps: 0.05,
        ..MethodParams::default()
    };
    let mut z =
        make_evaluator(MethodKind::ZOrder, &tree, kernel, "εKDV", &params).expect("Z-order εKDV");
    let exact = ExactScan::new(&points, kernel);
    let q = [0.5, 0.5];
    let f = exact.density(&q);
    let r = z.eval_eps(&q, 0.05);
    assert!(
        (r - f).abs() / points.total_weight() <= 0.05,
        "sampled estimate {r} too far from exact {f}"
    );
}

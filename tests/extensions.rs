//! Integration coverage of the beyond-the-paper extensions through the
//! facade crate: kernel regression, tile-level τKDV, split rules,
//! parallel rendering, and PNG output — all composed end to end.

use kdv::core::regress::KernelRegression;
use kdv::data::Dataset;
use kdv::geom::vecmath::dist2;
use kdv::index::SplitRule;
use kdv::prelude::*;
use kdv::viz::png;
use kdv::viz::tiles::render_tau_tiled;

fn crime_workload(n: usize) -> (PointSet, Kernel) {
    let raw = Dataset::Crime.generate(n, 61);
    let bw = scott_gamma(&raw);
    let mut points = raw;
    points.scale_weights(bw.weight);
    (points, Kernel::gaussian(bw.gamma))
}

#[test]
fn tiled_tau_equals_per_pixel_across_split_rules() {
    let (points, kernel) = crime_workload(5000);
    let raster = RasterSpec::covering(&points, 80, 60, 0.02);
    for split in SplitRule::ALL {
        let tree = KdTree::build(
            &points,
            BuildConfig {
                leaf_capacity: 32,
                split,
            },
        );
        let levels = estimate_levels(&tree, kernel, &raster, 12, 9);
        let tau = levels.tau(0.1);
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let reference = render_tau(&mut ev, &raster, tau);
        let (tiled, _) = render_tau_tiled(&tree, kernel, BoundFamily::Quadratic, &raster, tau);
        assert_eq!(tiled, reference, "split rule {split:?}");
    }
}

#[test]
fn split_rules_agree_on_eps_density() {
    let (points, kernel) = crime_workload(4000);
    let raster = RasterSpec::covering(&points, 16, 12, 0.02);
    let mut grids = Vec::new();
    for split in SplitRule::ALL {
        let tree = KdTree::build(
            &points,
            BuildConfig {
                leaf_capacity: 16,
                split,
            },
        );
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        grids.push(render_eps(&mut ev, &raster, 0.01));
    }
    for g in &grids[1..] {
        // Different trees refine differently but every result carries
        // the same ε = 1% guarantee → pairwise within 2%.
        assert!(g.mean_relative_error(&grids[0]) < 0.02);
    }
}

#[test]
fn regression_composes_with_emulated_data() {
    // Response: the (known) density-like score of each crime point's
    // location; the regressor must reproduce it at held-out queries.
    let raw = Dataset::Crime.generate(6000, 67);
    let score = |p: &[f64]| (p[0] + 84.4) * 10.0 + (p[1] - 33.75) * 5.0;
    let ys: Vec<f64> = (0..raw.len()).map(|i| score(raw.point(i))).collect();
    let bw = scott_gamma(&raw);
    let kernel = Kernel::gaussian(bw.gamma * 0.25); // smoother for regression
    let model = KernelRegression::fit(&raw, &ys, kernel);
    let mut predictor = model.predictor();
    let mean = raw.mean().expect("non-empty");
    let q = [mean[0], mean[1]];
    let pred = predictor.predict(&q, 0.02).expect("dense data");
    // Linear response + symmetric kernel → prediction ≈ plane value.
    assert!(
        (pred.value - score(&q)).abs() < 0.2,
        "ŷ = {} vs plane {}",
        pred.value,
        score(&q)
    );
    // Certified interval honest against brute force.
    let brute_num: f64 = (0..raw.len())
        .map(|i| ys[i] * kernel.eval_dist2(dist2(&q, raw.point(i))))
        .sum();
    let brute_den: f64 = (0..raw.len())
        .map(|i| kernel.eval_dist2(dist2(&q, raw.point(i))))
        .sum();
    let truth = brute_num / brute_den;
    assert!(pred.lo - 1e-9 <= truth && truth <= pred.hi + 1e-9);
}

#[test]
fn parallel_png_pipeline() {
    let (points, kernel) = crime_workload(3000);
    let raster = RasterSpec::covering(&points, 40, 30, 0.02);
    let tree = KdTree::build_default(&points);
    let grid = kdv::viz::parallel::render_eps_parallel(
        || RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic),
        &raster,
        0.01,
        4,
    );
    let img = ColorMap::heat().render(&grid, true);
    let bytes = png::encode(&img);
    assert!(bytes.starts_with(b"\x89PNG\r\n\x1a\n"));
    // PNG dimensions encoded big-endian in IHDR.
    assert_eq!(&bytes[16..24], &[0, 0, 0, 40, 0, 0, 0, 30]);
}
